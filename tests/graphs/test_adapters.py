"""Tests for SearchStructure adapters: successor-function semantics."""

import numpy as np
import pytest

from repro.core.model import run_reference
from repro.graphs.adapters import (
    hierdag_search_structure,
    ktree_directed_structure,
    ktree_range_structure,
    ktree_rank_structure,
)
from repro.graphs.hierarchical import build_mu_ary_search_dag
from repro.graphs.ktree import build_balanced_search_tree, tree_from_keys


class TestHierDagSearch:
    def test_descends_to_correct_leaf(self):
        dag, keys = build_mu_ary_search_dag(2, 8, seed=1)
        rng = np.random.default_rng(0)
        q = rng.uniform(keys[0], keys[-1], 200)
        st = hierdag_search_structure(dag)
        res = run_reference(st, q, 0)
        first_leaf = int(dag.level_start[dag.height])
        for qq, path in zip(q, res.paths()):
            leaf = path[-1] - first_leaf
            lo = keys[leaf - 1] if leaf > 0 else -np.inf
            assert lo < qq <= keys[leaf] or (leaf == keys.size - 1 and qq > keys[-1])

    def test_path_length_is_height_plus_one(self):
        dag, keys = build_mu_ary_search_dag(3, 5, seed=2)
        st = hierdag_search_structure(dag)
        res = run_reference(st, np.array([keys[10]]), 0)
        assert len(res.paths()[0]) == 6

    def test_path_follows_edges(self):
        dag, keys = build_mu_ary_search_dag(2, 6, seed=3)
        st = hierdag_search_structure(dag)
        res = run_reference(st, np.array([keys[17]]), 0)
        path = res.paths()[0]
        for u, v in zip(path, path[1:]):
            assert v in dag.children[u]


class TestKTreeDirected:
    def test_matches_searchsorted(self):
        t = build_balanced_search_tree(2, 9, seed=4)
        st = ktree_directed_structure(t)
        rng = np.random.default_rng(1)
        q = rng.uniform(t.leaf_keys[0] - 1, t.leaf_keys[-1] + 1, 300)
        res = run_reference(st, q, 0)
        got_rank = np.array([p[-1] for p in res.paths()]) - t.first_leaf()
        want = np.minimum(np.searchsorted(t.leaf_keys, q), t.n_leaves - 1)
        assert (got_rank == want).all()

    def test_karies(self):
        t = build_balanced_search_tree(4, 4, seed=5)
        st = ktree_directed_structure(t)
        q = t.leaf_keys[[3, 77, 200]]
        res = run_reference(st, q, 0)
        ranks = np.array([p[-1] for p in res.paths()]) - t.first_leaf()
        assert ranks.tolist() == [3, 77, 200]


class TestKTreeRank:
    @pytest.mark.parametrize("strict", [False, True])
    def test_rank_matches_searchsorted(self, strict):
        keys = np.sort(np.random.default_rng(2).uniform(0, 100, 53))
        t = tree_from_keys(2, keys)
        st = ktree_rank_structure(t, strict=strict)
        q = np.random.default_rng(3).uniform(-5, 105, 200)
        res = run_reference(st, q, 0, state_width=1)
        side = "left" if strict else "right"
        want = np.searchsorted(keys, q, side=side)
        assert (res.state[:, 0].astype(int) == want).all()

    def test_rank_of_exact_keys(self):
        keys = np.array([1.0, 2.0, 3.0, 4.0])
        t = tree_from_keys(2, keys)
        le = run_reference(ktree_rank_structure(t, strict=False), keys.copy(), 0, 1)
        lt = run_reference(ktree_rank_structure(t, strict=True), keys.copy(), 0, 1)
        assert le.state[:, 0].tolist() == [1, 2, 3, 4]
        assert lt.state[:, 0].tolist() == [0, 1, 2, 3]

    def test_padding_not_counted(self):
        keys = np.array([1.0, 2.0, 3.0])  # pads to 4 leaves with +inf
        t = tree_from_keys(2, keys)
        res = run_reference(
            ktree_rank_structure(t), np.array([1e12]), 0, state_width=1
        )
        assert res.state[0, 0] == 3

    def test_ternary_rank(self):
        keys = np.sort(np.random.default_rng(4).uniform(0, 10, 27))
        t = tree_from_keys(3, keys)
        q = np.random.default_rng(5).uniform(0, 10, 64)
        res = run_reference(ktree_rank_structure(t), q, 0, state_width=1)
        assert (res.state[:, 0].astype(int) == np.searchsorted(keys, q, "right")).all()


class TestKTreeRangeWalk:
    def _visited_leaves(self, tree, path):
        fl = tree.first_leaf()
        return [v - fl for v in path if v >= fl]

    def test_visits_exactly_in_range_leaves(self):
        t = build_balanced_search_tree(2, 7, seed=6)
        st = ktree_range_structure(t)
        rng = np.random.default_rng(7)
        for _ in range(30):
            lo, hi = np.sort(rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], 2))
            res = run_reference(
                st, np.array([[lo, hi]]), 0, state_width=2, max_steps=10_000
            )
            ranks = self._visited_leaves(t, res.paths()[0])
            keys = t.leaf_keys[ranks]
            strict_in = keys[(keys > lo) & (keys < hi)]
            want = t.leaf_keys[(t.leaf_keys > lo) & (t.leaf_keys < hi)]
            assert set(strict_in.tolist()) == set(want.tolist())

    def test_leaves_visited_in_key_order(self):
        t = build_balanced_search_tree(2, 6, seed=8)
        st = ktree_range_structure(t)
        lo, hi = t.leaf_keys[5], t.leaf_keys[40]
        res = run_reference(st, np.array([[lo, hi]]), 0, 2, max_steps=10_000)
        ranks = self._visited_leaves(t, res.paths()[0])
        assert ranks == sorted(ranks)

    def test_empty_range_visits_one_boundary_leaf(self):
        t = build_balanced_search_tree(2, 5, seed=9)
        st = ktree_range_structure(t)
        lo = t.leaf_keys[10] + 1e-9
        hi = lo + 1e-12
        res = run_reference(st, np.array([[lo, hi]]), 0, 2, max_steps=10_000)
        ranks = self._visited_leaves(t, res.paths()[0])
        assert len(ranks) <= 1

    def test_range_beyond_all_keys_terminates(self):
        t = build_balanced_search_tree(2, 5, seed=10)
        st = ktree_range_structure(t)
        lo = t.leaf_keys[-1] + 1
        res = run_reference(st, np.array([[lo, lo + 5]]), 0, 2, max_steps=10_000)
        assert len(self._visited_leaves(t, res.paths()[0])) <= 1

    def test_full_range_walks_all_leaves(self):
        t = build_balanced_search_tree(2, 4, seed=11)
        st = ktree_range_structure(t)
        lo = t.leaf_keys[0] - 1
        hi = t.leaf_keys[-1] + 1
        res = run_reference(st, np.array([[lo, hi]]), 0, 2, max_steps=10_000)
        ranks = self._visited_leaves(t, res.paths()[0])
        assert ranks == list(range(t.n_leaves))

    def test_moves_only_along_tree_edges(self):
        t = build_balanced_search_tree(2, 5, seed=12)
        st = ktree_range_structure(t)
        lo, hi = t.leaf_keys[3], t.leaf_keys[20]
        res = run_reference(st, np.array([[lo, hi]]), 0, 2, max_steps=10_000)
        path = res.paths()[0]
        for u, v in zip(path, path[1:]):
            assert v == t.parent[u] or v in t.children[u]

    def test_path_length_output_sensitive(self):
        t = build_balanced_search_tree(2, 8, seed=13)
        st = ktree_range_structure(t)
        narrow = run_reference(
            st, np.array([[t.leaf_keys[4], t.leaf_keys[6]]]), 0, 2, max_steps=10_000
        )
        wide = run_reference(
            st, np.array([[t.leaf_keys[4], t.leaf_keys[200]]]), 0, 2, max_steps=10_000
        )
        assert len(wide.paths()[0]) > len(narrow.paths()[0])
