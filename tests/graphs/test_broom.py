"""Tests for the broom workload (E3's long-path alpha-partitionable graph)."""

import numpy as np
import pytest

from repro.core.model import run_reference
from repro.graphs.broom import broom_structure, build_broom
from repro.graphs.validate import check_splitter


class TestConstruction:
    def test_vertex_count(self):
        br = build_broom(2, 3, 5)
        assert br.n_vertices == 15 + 8 * 5

    def test_longest_path(self):
        br = build_broom(2, 4, 10)
        assert br.longest_path == 4 + 1 + 10

    def test_zero_handles(self):
        br = build_broom(2, 3, 0)
        assert br.n_vertices == 15
        assert br.longest_path == 4

    def test_handles_are_chains(self):
        br = build_broom(2, 2, 4)
        Vt = br.tree.n_vertices
        # each handle vertex except the last has exactly one out-edge
        handles = np.arange(Vt, br.n_vertices)
        deg = (br.adjacency[handles] >= 0).sum(axis=1)
        assert set(deg.tolist()) <= {0, 1}
        assert (deg == 0).sum() == br.tree.n_leaves  # handle ends

    def test_component_labels(self):
        br = build_broom(2, 3, 4)
        assert (br.comp[: br.tree.n_vertices] == 0).all()
        assert br.comp.max() == br.tree.n_leaves
        assert (br.kind[br.comp > 0] == 1).all()

    def test_splitting_size_law(self):
        br = build_broom(2, 5, 32)
        sp = br.splitting()
        check_splitter_like(sp, br)

    def test_rejects_negative_handles(self):
        with pytest.raises(ValueError):
            build_broom(2, 3, -1)


def check_splitter_like(sp, br):
    sizes = sp.sizes
    assert sizes.max() <= 8 * br.size**sp.delta


class TestSearch:
    def test_search_reaches_handle_end(self):
        br = build_broom(2, 4, 7, seed=1)
        st = broom_structure(br)
        keys = br.tree.leaf_keys[[2, 9]].astype(np.float64)
        res = run_reference(st, keys, 0)
        for key, path in zip(keys, res.paths()):
            assert len(path) == br.longest_path
            # the handle entered matches the leaf the key belongs to
            leaf = path[br.tree.height]
            assert br.tree.subtree_lo[leaf] == key

    def test_all_queries_same_length_paths(self):
        br = build_broom(2, 3, 12, seed=2)
        st = broom_structure(br)
        rng = np.random.default_rng(3)
        keys = rng.uniform(br.tree.leaf_keys[0], br.tree.leaf_keys[-1], 64)
        res = run_reference(st, keys, 0)
        assert {len(p) for p in res.paths()} == {br.longest_path}

    def test_handle_walk_stays_in_one_component(self):
        br = build_broom(2, 3, 9, seed=4)
        st = broom_structure(br)
        keys = br.tree.leaf_keys[:4].astype(np.float64)
        res = run_reference(st, keys, 0)
        for path in res.paths():
            comps = {int(br.comp[v]) for v in path if br.comp[v] > 0}
            assert len(comps) == 1
