"""Tests for the dynamic 2-3 tree and its multisearch flattening."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alpha import alpha_multisearch
from repro.core.model import QuerySet, run_reference
from repro.graphs.twothree import TwoThreeTree, flatten_two_three
from repro.mesh.engine import MeshEngine


def build(keys) -> TwoThreeTree:
    t = TwoThreeTree()
    for k in keys:
        t.insert(k)
    return t


class TestInsert:
    def test_sorted_iteration(self):
        t = build([5.0, 1.0, 9.0, 3.0, 7.0])
        assert t.keys() == [1.0, 3.0, 5.0, 7.0, 9.0]

    def test_duplicates_rejected(self):
        t = build([1.0, 2.0])
        assert not t.insert(1.0)
        assert len(t) == 2

    def test_contains(self):
        t = build(range(20))
        assert 13.0 in t
        assert 20.5 not in t

    def test_invariants_incrementally(self):
        rng = np.random.default_rng(0)
        t = TwoThreeTree()
        for k in rng.permutation(100):
            t.insert(float(k))
            t.check_invariants()
        assert t.keys() == [float(x) for x in range(100)]

    def test_height_logarithmic(self):
        t = build(np.random.default_rng(1).permutation(729).astype(float))
        # 3^h >= leaves >= 2^h
        assert t.height() <= np.log2(729) + 1
        assert t.height() >= np.log(729) / np.log(3) - 1

    def test_ascending_and_descending_orders(self):
        for keys in (range(64), range(63, -1, -1)):
            t = build([float(k) for k in keys])
            t.check_invariants()
            assert t.keys() == [float(x) for x in range(64)]


class TestDelete:
    def test_delete_existing(self):
        t = build([1.0, 2.0, 3.0, 4.0, 5.0])
        assert t.delete(3.0)
        assert t.keys() == [1.0, 2.0, 4.0, 5.0]
        t.check_invariants()

    def test_delete_absent(self):
        t = build([1.0, 2.0])
        assert not t.delete(9.0)
        assert len(t) == 2

    def test_delete_to_empty(self):
        t = build([1.0, 2.0, 3.0])
        for k in (2.0, 1.0, 3.0):
            assert t.delete(k)
            t.check_invariants()
        assert len(t) == 0
        assert t.root is None

    def test_random_interleaving_vs_set_oracle(self):
        rng = np.random.default_rng(2)
        t = TwoThreeTree()
        oracle: set[float] = set()
        for _ in range(600):
            k = float(rng.integers(0, 80))
            if rng.random() < 0.6:
                assert t.insert(k) == (k not in oracle)
                oracle.add(k)
            else:
                assert t.delete(k) == (k in oracle)
                oracle.discard(k)
            t.check_invariants()
            assert len(t) == len(oracle)
        assert t.keys() == sorted(oracle)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_set(self, ops):
        t = TwoThreeTree()
        oracle: set[float] = set()
        for x in ops:
            k = float(x // 2)
            if x % 2 == 0:
                t.insert(k)
                oracle.add(k)
            else:
                t.delete(k)
                oracle.discard(k)
            t.check_invariants()
        assert t.keys() == sorted(oracle)


class TestFlattening:
    def test_search_structure_finds_keys(self):
        rng = np.random.default_rng(3)
        keys = np.sort(rng.choice(10_000, 200, replace=False)).astype(float)
        t = build(rng.permutation(keys))
        st_, sp, leaf_key = flatten_two_three(t)
        queries = keys[rng.integers(0, keys.size, 100)]
        res = run_reference(st_, queries, 0, validate_moves=True)
        finals = np.array([p[-1] for p in res.paths()])
        assert (leaf_key[finals] == queries).all()

    def test_missing_keys_land_on_neighbours(self):
        keys = np.arange(0.0, 100.0, 2.0)  # even keys
        t = build(keys)
        st_, sp, leaf_key = flatten_two_three(t)
        res = run_reference(st_, np.array([31.0]), 0)
        found = leaf_key[res.paths()[0][-1]]
        assert found in (30.0, 32.0)

    def test_splitting_covers_and_bounds(self):
        t = build(np.random.default_rng(4).permutation(500).astype(float))
        st_, sp, _ = flatten_two_three(t)
        assert (sp.comp >= 0).all()
        n = st_.size
        assert sp.sizes.max() <= 8 * n**0.5 * 3  # coarse alpha=1/2 envelope

    def test_alpha_multisearch_on_irregular_tree(self):
        rng = np.random.default_rng(5)
        keys = np.sort(rng.choice(100_000, 700, replace=False)).astype(float)
        t = build(rng.permutation(keys))
        st_, sp, leaf_key = flatten_two_three(t)
        queries = keys[rng.integers(0, keys.size, 256)]
        ref = run_reference(st_, queries, 0)
        eng = MeshEngine.for_problem(max(st_.size, 256))
        qs = QuerySet.start(queries, 0, record_trace=True)
        alpha_multisearch(eng, st_, qs, sp)
        assert qs.paths() == ref.paths()

    def test_flatten_after_deletions(self):
        rng = np.random.default_rng(6)
        t = build(rng.permutation(300).astype(float))
        for k in rng.choice(300, 120, replace=False):
            t.delete(float(k))
        t.check_invariants()
        st_, sp, leaf_key = flatten_two_three(t)
        remaining = np.array(t.keys())
        res = run_reference(st_, remaining[:64], 0, validate_moves=True)
        finals = np.array([p[-1] for p in res.paths()])
        assert (leaf_key[finals] == remaining[:64]).all()

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            flatten_two_three(TwoThreeTree())

    def test_single_key_tree(self):
        t = build([42.0])
        st_, sp, leaf_key = flatten_two_three(t)
        res = run_reference(st_, np.array([42.0]), 0)
        assert leaf_key[res.paths()[0][-1]] == 42.0
