"""Cross-checks of the splitter machinery against networkx.

A delta-splitting's components must be exactly the connected components
of ``(V, E - S)`` (Section 4.1's definition); these tests rebuild that
graph in networkx and compare, independently of our labelling code.
"""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.broom import build_broom
from repro.graphs.ktree import build_balanced_search_tree
from repro.intervals.interval_tree import IntervalTree
from repro.intervals.structure import build_interval_structure
from repro.bench.workloads import random_intervals


def tree_graph(tree) -> nx.Graph:
    g = nx.Graph()
    g.add_nodes_from(range(tree.n_vertices))
    for v in range(tree.n_vertices):
        for c in tree.children[v]:
            if c >= 0:
                g.add_edge(v, int(c))
    return g


def components_from_labels(comp: np.ndarray) -> set[frozenset]:
    out: dict[int, set] = {}
    for v, c in enumerate(comp):
        if c >= 0:
            out.setdefault(int(c), set()).add(v)
    return {frozenset(s) for s in out.values()}


class TestTreeSplitters:
    @pytest.mark.parametrize("height,depths", [(6, [3]), (8, [2, 5]), (9, [3, 6, 8])])
    def test_components_are_nx_components(self, height, depths):
        tree = build_balanced_search_tree(2, height, seed=1)
        lab = tree.splitter_at_depths(depths)
        g = tree_graph(tree)
        g.remove_edges_from([(int(u), int(v)) for u, v in lab.cut_edges])
        want = {frozenset(c) for c in nx.connected_components(g)}
        assert components_from_labels(lab.comp) == want

    def test_cut_edge_count_matches(self):
        tree = build_balanced_search_tree(3, 5, seed=2)
        lab = tree.splitter_at_depths([2, 4])
        assert lab.cut_edges.shape[0] == 3**2 + 3**4

    def test_border_distance_vs_nx_shortest_path(self):
        tree = build_balanced_search_tree(2, 12, seed=3)
        s1, s2, dist = tree.alpha_beta_splitters()
        g = tree_graph(tree)
        b1 = [int(v) for v in np.flatnonzero(s1.border)]
        b2 = {int(v) for v in np.flatnonzero(s2.border)}
        lengths = nx.multi_source_dijkstra_path_length(g, b1)
        want = min(d for v, d in lengths.items() if v in b2)
        assert want == dist


class TestBroomSplitting:
    def test_components_are_nx_components_minus_cut(self):
        br = build_broom(2, 4, 12, seed=4)
        sp = br.splitting()
        g = nx.Graph()
        g.add_nodes_from(range(br.n_vertices))
        for v in range(br.n_vertices):
            for c in br.adjacency[v]:
                if c >= 0 and sp.comp[v] == sp.comp[c]:
                    g.add_edge(v, int(c))
        want = set()
        for c in nx.connected_components(g):
            want.add(frozenset(c))
        assert components_from_labels(sp.comp) == want

    def test_handles_connected_in_full_graph(self):
        br = build_broom(2, 3, 6, seed=5)
        g = nx.Graph()
        for v in range(br.n_vertices):
            for c in br.adjacency[v]:
                if c >= 0:
                    g.add_edge(v, int(c))
        assert nx.is_connected(g)
        assert nx.is_tree(g)


class TestIntervalStructureGraph:
    def test_structure_is_a_dag_with_short_depth(self):
        lefts, rights = random_intervals(120, seed=6, domain=100.0)
        itree = IntervalTree(lefts, rights)
        istruct = build_interval_structure(itree)
        g = nx.DiGraph()
        st = istruct.structure
        for v in range(st.n_vertices):
            for c in st.adjacency[v]:
                if c >= 0:
                    g.add_edge(v, int(c))
        assert nx.is_directed_acyclic_graph(g)
        depth = nx.dag_longest_path_length(g)
        # a search path can walk one chain per primary node it visits:
        # bound by height + sum over depths of the largest chain there
        per_depth: dict[int, int] = {}
        for nd in itree.nodes:
            per_depth[nd.depth] = max(per_depth.get(nd.depth, 0), int(nd.by_left.size))
        assert depth <= itree.height + sum(per_depth.values()) + 2
