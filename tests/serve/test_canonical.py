"""Satellite regressions: canonical-query contract, non-finite cache
keys, and sharded worker-pool batches.

``submit_many`` used to re-canonicalize each row on its way through
``submit`` — a pre-canonicalized (m, 1) slice of a width-1 service
reshaped *again*, corrupting the batch.  The contract is now pinned:
canonicalization happens exactly once and is idempotent.  Cache keys
refuse non-finite queries outright (NaN != NaN would make the entry
unreachable *and* shadow a legitimate slot).
"""

import asyncio

import numpy as np
import pytest

from repro.serve import BatchingServer, ResultCache, WorkerPool, query_cache_key
from repro.serve.cache import drain_cache_counters


class TestCanonicalContract:
    @pytest.mark.parametrize("kind", ["pointloc", "linepoly", "interval"])
    def test_idempotent(self, kind, all_envs):
        service = all_envs[kind]["service"]
        once = service.canonical_queries(all_envs[kind]["queries"])
        twice = service.canonical_queries(once)
        assert twice.tobytes() == once.tobytes()
        assert twice.shape == once.shape
        assert twice.dtype == np.float64

    def test_one_row_forms(self, pointloc_env):
        service = pointloc_env["service"]
        row = service.canonical_queries(np.array([0.25, 0.75]))
        assert row.shape == (1, 2)
        with pytest.raises(ValueError, match="queries must be"):
            service.canonical_queries(np.array(0.5))  # 0-d -> (1,1): wrong width

    def test_submit_many_canonicalizes_exactly_once(self, interval_env, monkeypatch):
        """The regression: count canonical_queries calls during a
        submit_many and require exactly one, with answers byte-identical
        to the direct batch."""
        service = interval_env["service"]
        queries = interval_env["queries"][:8]
        direct, _ = service.run_batch(queries)

        calls = {"n": 0}
        orig = type(service).canonical_queries

        def counting(self, q):
            calls["n"] += 1
            return orig(self, q)

        monkeypatch.setattr(type(service), "canonical_queries", counting)

        async def run():
            server = BatchingServer(service, batch_size=8, deadline_s=0.005)
            results = await server.submit_many(queries)
            await server.drain()
            return results

        results = asyncio.run(run())
        # one call from submit_many, one from the flush's run_batch
        assert calls["n"] <= 2
        assert np.array_equal(np.stack(results), np.stack(direct))

    def test_submit_many_accepts_canonical_output(self, interval_env):
        """Feeding canonical_queries' own output back in must serve the
        same answers (the double-reshape bug corrupted exactly this)."""
        service = interval_env["service"]
        queries = interval_env["queries"][:6]
        direct, _ = service.run_batch(queries)

        async def run(q):
            server = BatchingServer(service, batch_size=8, deadline_s=0.005)
            results = await server.submit_many(q)
            await server.drain()
            return results

        results = asyncio.run(run(service.canonical_queries(queries)))
        assert np.array_equal(np.stack(results), np.stack(direct))


class TestNonFiniteCacheKeys:
    def test_key_refused(self, pointloc_env):
        sid = pointloc_env["snapshot"].snapshot_id
        assert query_cache_key(sid, np.array([0.5, np.nan])) is None
        assert query_cache_key(sid, np.array([np.inf, 0.5])) is None
        assert query_cache_key(sid, np.array([-np.inf, 0.5])) is None
        assert query_cache_key(sid, np.array([0.5, 0.5])) is not None

    def test_cache_treats_refused_key_as_miss(self):
        drain_cache_counters()
        cache = ResultCache(8)
        hit, value = cache.get(None)
        assert (hit, value) == (False, None)
        cache.put(None, np.array([1.0]))  # no-op: nothing enters the cache
        assert len(cache) == 0
        assert cache.counters()["misses"] == 1

    def test_nan_queries_serve_without_polluting_cache(self, pointloc_env):
        """NaN rows still get (non-)answers, but the cache stays clean and
        every stored key decodes to finite float64s."""
        service = pointloc_env["service"]
        qs = np.array([[0.5, 0.5], [np.nan, 0.5], [0.25, np.inf], [0.75, 0.75]])
        cache = ResultCache(64)

        async def run():
            server = BatchingServer(
                service, batch_size=4, deadline_s=0.005, cache=cache
            )
            results = await server.submit_many(qs)
            await server.drain()
            return results

        results = asyncio.run(run())
        assert len(results) == 4
        assert len(cache) == 2  # only the finite rows were cached
        for _sid, qbytes in cache.keys():
            decoded = np.frombuffer(qbytes, dtype=np.float64)
            assert np.isfinite(decoded).all()


class TestShardedWorkerPool:
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_sharded_batches_byte_identical(self, pointloc_env, shards):
        queries = pointloc_env["queries"][:9]
        direct, direct_steps = pointloc_env["service"].run_batch(queries)
        with WorkerPool(
            pointloc_env["path"], workers=2, shards=shards, heartbeat_s=0.1
        ) as pool:
            results, steps = pool.submit_batch(queries).result(timeout=60)
        assert np.array_equal(np.stack(results), np.stack(direct))
        assert steps > 0

    def test_more_shards_than_rows(self, pointloc_env):
        queries = pointloc_env["queries"][:2]
        direct, _ = pointloc_env["service"].run_batch(queries)
        with WorkerPool(
            pointloc_env["path"], workers=2, shards=8, heartbeat_s=0.1
        ) as pool:
            results, _ = pool.submit_batch(queries).result(timeout=60)
        assert np.array_equal(np.stack(results), np.stack(direct))

    def test_shards_validated(self, pointloc_env):
        with pytest.raises(ValueError, match="shards"):
            WorkerPool(pointloc_env["path"], shards=0)
