"""Supervised serving: the self-healing pool's acceptance properties.

The contract under test, from DESIGN.md §8:

* every accepted query's future resolves **exactly once** — with a
  result or a typed :class:`ServingError` — under crashes, hangs, slow
  workers, corrupt replies, load shedding, and shutdown;
* answered queries are **byte-identical** to a direct single-process
  batch, regardless of how many retries/hedges/restarts happened;
* a corrupt reply is discarded before deserialization and can never
  resolve a future or populate the result cache;
* supervision is free when idle: a fault-free supervised batch charges
  exactly the mesh steps the same batch charges in-process, and zero
  steps are charged when nothing is served.

Worker processes restore from the session snapshot, so each pool spawn
costs an interpreter start + construction-free restore; tests share
queries and keep pools small (2 workers) to bound wall-clock.
"""

import asyncio

import numpy as np
import pytest

from repro.mesh.faults import PROCESS_FAULT_KINDS, FaultPlan
from repro.serve import (
    BatchFailed,
    Overloaded,
    ResultCache,
    ServerClosed,
    ServingError,
    SupervisedServer,
    WorkerPool,
    WorkerUnavailable,
)
from repro.serve.cache import query_cache_key
from repro.serve.ipc import ReplyCorrupt, pack_reply, unpack_reply


def _fast_pool(path, **overrides):
    kwargs = dict(
        workers=2,
        batch_deadline_s=10.0,
        heartbeat_s=0.1,
        heartbeat_timeout_s=3.0,
        max_retries=4,
        backoff_s=0.02,
        restart_backoff_s=0.05,
    )
    kwargs.update(overrides)
    return WorkerPool(path, **kwargs)


async def _drive(pool, queries, **server_kwargs):
    server = SupervisedServer(pool, **server_kwargs)
    tasks = [asyncio.ensure_future(server.submit(q)) for q in queries]
    settled = await asyncio.gather(*tasks, return_exceptions=True)
    await server.close()
    return settled, server


class TestCleanPath:
    def test_byte_identity_and_exact_steps(self, pointloc_env):
        """A fault-free supervised batch = the direct batch, bit for bit,
        step for step — supervision charges nothing when idle."""
        queries = pointloc_env["queries"][:8]
        direct, direct_steps = pointloc_env["service"].run_batch(queries)
        with _fast_pool(pointloc_env["path"]) as pool:
            settled, server = asyncio.run(
                _drive(pool, queries, batch_size=8, deadline_s=0.01)
            )
            assert all(not isinstance(r, Exception) for r in settled)
            assert all(np.array_equal(r, d) for r, d in zip(settled, direct))
            # one batch of 8 -> exactly the direct charge, not a step more
            assert server.stats["mesh_steps"] == direct_steps
            assert pool.stats["mesh_steps"] == direct_steps
            assert pool.stats["retries"] == 0
            assert pool.stats["timeouts"] == 0
            assert pool.stats["shed"] == 0
            assert pool.stats["restarts"] == 0

    def test_interval_service_through_pool(self, interval_env):
        queries = interval_env["queries"][:6]
        direct, _ = interval_env["service"].run_batch(queries)
        with _fast_pool(interval_env["path"]) as pool:
            settled, _ = asyncio.run(
                _drive(pool, queries, batch_size=6, deadline_s=0.01)
            )
            assert all(np.array_equal(r, d) for r, d in zip(settled, direct))

    def test_snapshot_id_pinned(self, pointloc_env):
        with _fast_pool(pointloc_env["path"]) as pool:
            assert pool.snapshot_id == pointloc_env["snapshot"].snapshot_id


class TestCrashRecovery:
    def test_crash_retries_to_byte_identity(self, pointloc_env):
        """Workers dying mid-batch: retries land on healthy (or restarted)
        workers and the answers still match the direct run exactly."""
        queries = pointloc_env["queries"][:12]
        direct, _ = pointloc_env["service"].run_batch(queries)
        plan = FaultPlan(seed=3, kind="worker_crash", rate=0.3, max_faults=None)
        with _fast_pool(
            pointloc_env["path"], max_retries=6, fault_plans=[plan]
        ) as pool:
            settled, _ = asyncio.run(
                _drive(pool, queries, batch_size=4, deadline_s=0.01)
            )
            assert all(not isinstance(r, Exception) for r in settled)
            assert all(np.array_equal(r, d) for r, d in zip(settled, direct))
            assert pool.stats["crashes"] >= 1, "the fault never fired"
            assert pool.stats["retries"] >= 1

    def test_retry_exhaustion_is_typed(self, pointloc_env):
        """A fault that re-arms on every restart makes recovery impossible;
        the batch must fail *typed*, with the attempt reasons, not hang."""
        queries = pointloc_env["queries"][:4]
        plan = FaultPlan(seed=3, kind="worker_crash", rate=1.0, max_faults=None)
        with _fast_pool(
            pointloc_env["path"], max_retries=2, breaker_threshold=20,
            fault_plans=[plan],
        ) as pool:
            settled, _ = asyncio.run(
                _drive(pool, queries, batch_size=4, deadline_s=0.01)
            )
            assert all(isinstance(r, BatchFailed) for r in settled)
            assert all("crash" in str(r) for r in settled)

    def test_circuit_breaker_quarantines_crash_loop(self, pointloc_env):
        """Consecutive deaths without a clean reply trip the breaker:
        the pool degrades to typed WorkerUnavailable, never a crash loop."""
        plan = FaultPlan(seed=3, kind="worker_crash", rate=1.0, max_faults=None)
        with _fast_pool(
            pointloc_env["path"], workers=1, max_retries=10,
            breaker_threshold=2, fault_plans=[plan],
        ) as pool:
            settled, _ = asyncio.run(
                _drive(
                    pool, pointloc_env["queries"][:2],
                    batch_size=2, deadline_s=0.01,
                )
            )
            assert all(isinstance(r, ServingError) for r in settled)
            assert pool.stats["quarantined"] >= 1
            assert pool.worker_states() == {0: "quarantined"}
            with pytest.raises(WorkerUnavailable):
                pool.submit_batch(pointloc_env["queries"][:2])


class TestCorruptReplies:
    def test_corrupt_reply_never_resolves_or_caches(self, pointloc_env):
        """Every reply corrupt: the checksum rejects each one before
        deserialization — futures fail typed, the cache stays empty."""
        queries = pointloc_env["queries"][:4]
        plan = FaultPlan(
            seed=3, kind="worker_corrupt_reply", rate=1.0, max_faults=None
        )
        cache = ResultCache(64)
        with _fast_pool(
            pointloc_env["path"], max_retries=3, fault_plans=[plan]
        ) as pool:
            settled, _ = asyncio.run(
                _drive(pool, queries, batch_size=4, deadline_s=0.01, cache=cache)
            )
            assert all(isinstance(r, BatchFailed) for r in settled)
            assert all("corrupt_reply" in str(r) for r in settled)
            assert pool.stats["corrupt_replies"] >= 1
            assert len(cache) == 0, "a corrupt reply reached the cache"
            for q in queries:
                found, _ = cache.get(query_cache_key(pool.snapshot_id, q))
                assert not found

    def test_partial_corruption_recovers_clean(self, pointloc_env):
        queries = pointloc_env["queries"][:8]
        direct, _ = pointloc_env["service"].run_batch(queries)
        plan = FaultPlan(
            seed=5, kind="worker_corrupt_reply", rate=0.5, max_faults=None
        )
        cache = ResultCache(64)
        with _fast_pool(
            pointloc_env["path"], max_retries=8, fault_plans=[plan]
        ) as pool:
            settled, _ = asyncio.run(
                _drive(pool, queries, batch_size=4, deadline_s=0.01, cache=cache)
            )
            assert all(np.array_equal(r, d) for r, d in zip(settled, direct))
            # whatever was cached is the verified value
            for q, d in zip(queries, direct):
                found, got = cache.get(query_cache_key(pool.snapshot_id, q))
                assert found and np.array_equal(got, d)

    def test_checksum_rejects_before_unpickle(self):
        payload, digest = pack_reply([np.int64(3)], 12.0)
        corrupted = bytes([payload[0] ^ 0xFF]) + payload[1:]
        with pytest.raises(ReplyCorrupt):
            unpack_reply(corrupted, digest)
        results, steps = unpack_reply(payload, digest)
        assert results == [3] and steps == 12.0


class TestAdmissionControl:
    def test_overload_sheds_typed_before_any_work(self, pointloc_env):
        """Beyond max_pending, submits are rejected synchronously with
        Overloaded — no future exists, no work was queued."""
        queries = pointloc_env["queries"][:2]
        with _fast_pool(pointloc_env["path"], max_pending=1) as pool:
            accepted = [pool.submit_batch(queries)]
            shed = 0
            for _ in range(4):
                try:
                    accepted.append(pool.submit_batch(queries))
                except Overloaded:
                    shed += 1
            assert shed >= 1
            assert pool.stats["shed"] == shed
            # everything accepted still resolves exactly once
            for future in accepted:
                results, steps = future.result(timeout=60)
                assert len(results) == 2 and steps > 0

    def test_closed_pool_rejects_typed(self, pointloc_env):
        pool = _fast_pool(pointloc_env["path"])
        pool.close()
        with pytest.raises(ServerClosed):
            pool.submit_batch(pointloc_env["queries"][:2])
        pool.close()  # idempotent

    def test_server_close_rejects_after_drain(self, pointloc_env):
        async def run():
            with _fast_pool(pointloc_env["path"]) as pool:
                server = SupervisedServer(pool, batch_size=4, deadline_s=0.01)
                first = await server.submit_many(pointloc_env["queries"][:4])
                await server.close(close_pool=True)
                assert server.closed
                with pytest.raises(ServerClosed):
                    await server.submit(pointloc_env["queries"][0])
                return first

        first = asyncio.run(run())
        assert len(first) == 4


class TestSingleFlight:
    def test_identical_queries_coalesce(self, pointloc_env):
        """Five concurrent submits of one query = one batch slot, one
        mesh answer, five identical results."""
        q = pointloc_env["queries"][0]
        direct, _ = pointloc_env["service"].run_batch(q[None, :])

        async def run():
            with _fast_pool(pointloc_env["path"]) as pool:
                server = SupervisedServer(
                    pool, batch_size=8, deadline_s=0.02, cache=ResultCache(64)
                )
                results = await asyncio.gather(*(server.submit(q) for _ in range(5)))
                await server.close()
                return results, server

        results, server = asyncio.run(run())
        assert all(np.array_equal(r, direct[0]) for r in results)
        assert server.stats["coalesced"] == 4
        assert server.stats["queries"] == 5
        # only the leader occupied a batch slot
        assert server.stats["batches"] == 1
        assert server.stats["mesh_steps"] > 0


class TestTraceEvents:
    def test_supervision_counters_reach_ambient_span(self, pointloc_env):
        from repro.mesh.trace import Tracer, ambient

        plan = FaultPlan(seed=3, kind="worker_crash", rate=0.5, max_faults=None)
        tracer = Tracer("supervision")
        with ambient(tracer):
            with _fast_pool(
                pointloc_env["path"], max_retries=8, breaker_threshold=20,
                fault_plans=[plan],
            ) as pool:
                settled, _ = asyncio.run(
                    _drive(
                        pool, pointloc_env["queries"][:8],
                        batch_size=4, deadline_s=0.01,
                    )
                )
                # exactly-once, typed-only — recovery itself is covered
                # elsewhere; this test checks the event wiring
                assert all(
                    not isinstance(r, Exception) or isinstance(r, ServingError)
                    for r in settled
                )
                assert pool.stats["retries"] >= 1
        events = tracer.root.events
        assert events.get("supervisor:retry", 0) >= 1
        assert events.get("supervisor:retry", 0) == pool.stats["retries"]
        if pool.stats["restarts"]:
            assert events.get("supervisor:restart", 0) == pool.stats["restarts"]


class TestFaultPlanSurface:
    def test_pool_rejects_engine_fault_kinds(self, pointloc_env):
        with pytest.raises(ValueError, match="process kinds"):
            WorkerPool(
                pointloc_env["path"],
                fault_plans=[FaultPlan(seed=1, kind="perturb_sort_key")],
            )

    def test_process_kinds_registered(self):
        for kind in PROCESS_FAULT_KINDS:
            FaultPlan(seed=1, kind=kind)  # must not raise
