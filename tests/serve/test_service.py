"""Restore fidelity: a snapshot-restored service answers exactly like a
fresh build running the same queries directly."""

import numpy as np
import pytest

from repro.serve import (
    IntervalCountService,
    LinePolyService,
    PointLocationService,
    SnapshotError,
    read_snapshot,
    restore_service,
)


class TestRestoreFidelity:
    def test_pointloc_matches_fresh_build(self, pointloc_env):
        from repro.apps.pointloc import locate_points_mesh

        results, steps = pointloc_env["service"].run_batch(pointloc_env["queries"])
        direct = locate_points_mesh(
            pointloc_env["sites"], pointloc_env["queries"], seed=7
        )
        assert np.array_equal(np.array(results), direct.triangle)
        assert steps == direct.mesh_steps  # same engine size, same schedule
        assert any(t >= 0 for t in results)  # the load actually hits faces

    def test_linepoly_matches_fresh_build(self, linepoly_env):
        from repro.apps.linepoly import line_polyhedron_queries
        from repro.geometry.dk3d import build_dk_hierarchy

        results, steps = linepoly_env["service"].run_batch(linepoly_env["queries"])
        hier = build_dk_hierarchy(linepoly_env["points"], seed=7)
        direct = line_polyhedron_queries(
            hier, linepoly_env["queries"][:, 0:3], linepoly_env["queries"][:, 3:6]
        )
        packed = np.stack(results)
        assert np.array_equal(packed[:, 0].astype(bool), direct.intersects)
        assert np.array_equal(packed[:, 1].astype(np.int64), direct.tangent_left)
        assert np.array_equal(packed[:, 2].astype(np.int64), direct.tangent_right)
        assert np.array_equal(
            packed[:, 3:].reshape(-1, 2, 4), direct.planes, equal_nan=True
        )
        assert steps == direct.mesh_steps

    def test_interval_matches_fresh_build(self, interval_env):
        from repro.apps.interval_search import (
            count_intersections_mesh,
            setup_interval_search,
        )

        results, steps = interval_env["service"].run_batch(interval_env["queries"])
        setup = setup_interval_search(
            interval_env["lefts"], interval_env["rights"], k=2
        )
        counts, direct_steps = count_intersections_mesh(
            setup, interval_env["queries"][:, 0], interval_env["queries"][:, 1]
        )
        assert np.array_equal(np.array(results), counts)
        assert steps == direct_steps
        assert max(results) > 0  # the load actually intersects something

    def test_interval_counts_match_brute_force(self, interval_env):
        from repro.intervals.interval_tree import brute_force_intersections

        results, _ = interval_env["service"].run_batch(interval_env["queries"])
        for count, (a, b) in zip(results, interval_env["queries"]):
            expected = brute_force_intersections(
                interval_env["lefts"], interval_env["rights"], a, b
            ).size
            assert count == expected


class TestDispatchAndValidation:
    def test_restore_service_dispatch(self, all_envs):
        expected = {
            "pointloc": PointLocationService,
            "linepoly": LinePolyService,
            "interval": IntervalCountService,
        }
        for kind, env in all_envs.items():
            assert type(restore_service(env["path"])) is expected[kind]

    def test_restore_accepts_snapshot_object(self, pointloc_env):
        service = restore_service(read_snapshot(pointloc_env["path"]))
        assert isinstance(service, PointLocationService)
        assert service.snapshot_id == pointloc_env["snapshot"].snapshot_id

    def test_wrong_kind_rejected(self, pointloc_env, interval_env):
        with pytest.raises(SnapshotError, match="cannot back"):
            IntervalCountService(read_snapshot(pointloc_env["path"]))
        with pytest.raises(SnapshotError, match="cannot back"):
            PointLocationService(read_snapshot(interval_env["path"]))

    @pytest.mark.parametrize("kind", ["pointloc", "linepoly", "interval"])
    def test_query_width_enforced(self, kind, all_envs):
        service = all_envs[kind]["service"]
        bad = np.zeros((3, service.query_width + 1))
        with pytest.raises(ValueError, match="queries must be"):
            service.run_batch(bad)

    def test_canonicalization_is_dtype_insensitive(self, pointloc_env):
        service = pointloc_env["service"]
        q64 = pointloc_env["queries"][:4]
        as_list = [list(map(float, row)) for row in q64]
        r1, _ = service.run_batch(q64)
        r2, _ = service.run_batch(np.asarray(q64, dtype=np.float32).astype(np.float64))
        r3, _ = service.run_batch(as_list)
        assert np.array_equal(np.array(r1), np.array(r2))
        assert np.array_equal(np.array(r1), np.array(r3))
