"""Snapshot format: round trips, versioned header, corruption detection."""

import io
import json

import numpy as np
import pytest

from repro.serve import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    SnapshotError,
    compute_snapshot_id,
    read_snapshot,
    write_snapshot,
)
from repro.serve.snapshot import _HEADER_KEY


class TestRoundTrip:
    @pytest.mark.parametrize("kind", ["pointloc", "linepoly", "interval"])
    def test_header_fields_survive(self, kind, all_envs):
        env = all_envs[kind]
        snapshot = read_snapshot(env["path"])
        assert snapshot.kind == kind
        assert snapshot.version == SNAPSHOT_VERSION
        assert snapshot.snapshot_id == env["snapshot"].snapshot_id
        assert snapshot.meta == env["snapshot"].meta
        assert set(snapshot.arrays) == set(env["snapshot"].arrays)
        for name, arr in snapshot.arrays.items():
            # tree payloads pad with NaN sentinels, so NaN == NaN here
            eq_nan = arr.dtype.kind == "f"
            assert np.array_equal(
                arr, env["snapshot"].arrays[name], equal_nan=eq_nan
            ), name

    @pytest.mark.parametrize("kind", ["pointloc", "linepoly", "interval"])
    def test_provenance_recorded(self, kind, all_envs):
        # restore must be able to report what environment built the
        # structure, mirroring the bench documents' provenance block
        prov = read_snapshot(all_envs[kind]["path"]).provenance
        assert prov and prov["backend"]
        assert "numpy" in prov["versions"]

    def test_id_is_content_derived(self, tmp_path):
        arrays = {"a": np.arange(5, dtype=np.int64)}
        s1 = write_snapshot(tmp_path / "one.npz", "pointloc", arrays, {"height": 1, "mu": 2.0})
        s2 = write_snapshot(tmp_path / "two.npz", "pointloc", arrays, {"height": 1, "mu": 2.0})
        assert s1.snapshot_id == s2.snapshot_id
        s3 = write_snapshot(
            tmp_path / "three.npz", "pointloc",
            {"a": np.arange(6, dtype=np.int64)}, {"height": 1, "mu": 2.0},
        )
        assert s3.snapshot_id != s1.snapshot_id
        # the kind participates: same bytes, different restore path
        assert (
            compute_snapshot_id("interval", arrays)
            != compute_snapshot_id("pointloc", arrays)
        )


def _rewrite_header(path, mutate) -> io.BytesIO:
    """Reload a snapshot file, apply ``mutate(header_dict)``, re-pack."""
    with np.load(path, allow_pickle=False) as npz:
        arrays = {name: npz[name] for name in npz.files if name != _HEADER_KEY}
        header = json.loads(bytes(npz[_HEADER_KEY].tobytes()).decode())
    mutate(header)
    buf = io.BytesIO()
    header_bytes = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    np.savez(buf, **{_HEADER_KEY: header_bytes}, **arrays)
    buf.seek(0)
    return buf


class TestValidation:
    def test_bad_magic_rejected(self, pointloc_env):
        buf = _rewrite_header(pointloc_env["path"], lambda h: h.update(magic="nope"))
        with pytest.raises(SnapshotError, match="magic"):
            read_snapshot(buf)

    def test_future_version_rejected(self, pointloc_env):
        buf = _rewrite_header(
            pointloc_env["path"], lambda h: h.update(version=SNAPSHOT_VERSION + 1)
        )
        with pytest.raises(SnapshotError, match="version"):
            read_snapshot(buf)

    def test_unknown_kind_rejected(self, pointloc_env):
        buf = _rewrite_header(pointloc_env["path"], lambda h: h.update(kind="voronoi"))
        with pytest.raises(SnapshotError, match="kind"):
            read_snapshot(buf)

    def test_tampered_content_rejected(self, pointloc_env):
        # flip one array element but keep the recorded id: the recomputed
        # hash disagrees and the restore refuses
        with np.load(pointloc_env["path"], allow_pickle=False) as npz:
            arrays = {n: np.array(npz[n]) for n in npz.files if n != _HEADER_KEY}
            header_bytes = np.array(npz[_HEADER_KEY])
        arrays["adjacency"][0, 0] += 1
        buf = io.BytesIO()
        np.savez(buf, **{_HEADER_KEY: header_bytes}, **arrays)
        buf.seek(0)
        with pytest.raises(SnapshotError, match="hash mismatch"):
            read_snapshot(buf)

    def test_not_a_snapshot_rejected(self, tmp_path):
        plain = tmp_path / "plain.npz"
        np.savez(plain, a=np.arange(3))
        with pytest.raises(SnapshotError, match="missing header"):
            read_snapshot(plain)

    def test_write_rejects_unknown_kind(self, tmp_path):
        with pytest.raises(SnapshotError, match="kind"):
            write_snapshot(tmp_path / "x.npz", "voronoi", {"a": np.arange(3)}, {})

    def test_write_rejects_reserved_name(self, tmp_path):
        with pytest.raises(SnapshotError, match="reserved"):
            write_snapshot(
                tmp_path / "x.npz", "pointloc", {_HEADER_KEY: np.arange(3)}, {}
            )

    def test_magic_constant(self, pointloc_env):
        # the on-disk magic is part of the format contract
        assert SNAPSHOT_MAGIC == "repro-snapshot"
        snapshot = read_snapshot(pointloc_env["path"])
        assert snapshot.version == 1


class TestTornWrites:
    """A truncated or partially-written .npz must fail *closed* with a
    SnapshotError naming the expected snapshot id — never restore junk,
    never leak zipfile/numpy internals as the caller-visible error."""

    @pytest.mark.parametrize("keep_fraction", [0.0, 0.1, 0.5, 0.9, 0.999])
    def test_truncated_file_fails_closed(self, pointloc_env, tmp_path, keep_fraction):
        data = pointloc_env["path"].read_bytes()
        torn = tmp_path / f"torn_{int(keep_fraction * 1000)}.npz"
        torn.write_bytes(data[: int(len(data) * keep_fraction)])
        want = pointloc_env["snapshot"].snapshot_id
        with pytest.raises(SnapshotError) as info:
            read_snapshot(torn, expected_id=want)
        # the error names the snapshot the caller wanted, even though the
        # file is too damaged to say what it holds
        assert want in str(info.value)
        assert "torn" in str(info.value) or "mismatch" in str(info.value)

    def test_truncation_without_expected_id_still_fails(self, pointloc_env, tmp_path):
        data = pointloc_env["path"].read_bytes()
        torn = tmp_path / "torn.npz"
        torn.write_bytes(data[: len(data) // 2])
        with pytest.raises(SnapshotError):
            read_snapshot(torn)

    def test_garbage_prefix_fails_closed(self, pointloc_env, tmp_path):
        bad = tmp_path / "garbage.npz"
        bad.write_bytes(b"\x00" * 512)
        want = pointloc_env["snapshot"].snapshot_id
        with pytest.raises(SnapshotError) as info:
            read_snapshot(bad, expected_id=want)
        assert want in str(info.value)

    def test_wrong_snapshot_rejected_by_expected_id(self, pointloc_env, interval_env):
        # an intact snapshot of the wrong build: hash-valid, but not the
        # one the caller pinned — the swap is detected by id, not luck
        want = pointloc_env["snapshot"].snapshot_id
        with pytest.raises(SnapshotError, match="not the expected"):
            read_snapshot(interval_env["path"], expected_id=want)

    def test_expected_id_accepts_the_right_file(self, pointloc_env):
        snap = read_snapshot(
            pointloc_env["path"],
            expected_id=pointloc_env["snapshot"].snapshot_id,
        )
        assert snap.snapshot_id == pointloc_env["snapshot"].snapshot_id
