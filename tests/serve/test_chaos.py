"""Chaos: faults injected mid-request must never leak a corrupt answer.

A fault plan corrupts the flush — either an engine primitive or the
query batch at the serving boundary — and the flush engine runs
paranoid, so the corruption raises :class:`InvariantViolation` at the
boundary it breaks.  The contract under test: every pending future
resolves *exceptionally* (no silently wrong result), the cache is never
populated from a faulted batch, and a subsequent clean batch on the
same server works.

Fault kinds are paired with services whose multisearch path actually
has that surface, mirroring ``repro.bench.chaos``: the constrained
(alpha) path used by the interval service sorts on the mesh, so
primitive sort faults fire there; the hierarchical-DAG path used by
point location and line-polyhedron charges its sorts and routes
analytically and is attacked through its *inputs* instead.
"""

import asyncio

import numpy as np
import pytest

from repro.mesh.faults import VM_FAULT_KINDS, FaultPlan, InvariantViolation
from repro.serve import BatchingServer, ResultCache, restore_service

NAN_KEY = FaultPlan(seed=5, kind="nan_query_key", rate=1.0, max_faults=None)

#: (service kind, plan) pairs where the plan has a real surface
CASES = [
    ("interval", FaultPlan(seed=5, kind="perturb_sort_key", rate=1.0, max_faults=None)),
    ("pointloc", NAN_KEY),
    ("linepoly", NAN_KEY),
    ("interval", NAN_KEY),
]


def _assert_cache_clean(cache):
    """Every stored key must decode to finite float64s.

    The ``nan_query_key`` corruptor used to be able to park a poisoned
    row under a NaN-bearing key — unreachable (NaN != NaN) yet occupying
    a slot; ``query_cache_key`` now refuses non-finite rows outright.
    """
    for _sid, qbytes in cache.keys():
        decoded = np.frombuffer(qbytes, dtype=np.float64)
        assert np.isfinite(decoded).all(), "non-finite query key in cache"


async def _submit_all(server, queries):
    tasks = [asyncio.ensure_future(server.submit(q)) for q in queries]
    await server.drain()
    return await asyncio.gather(*tasks, return_exceptions=True)


def _fresh_server(env, plans, cache=None, vm_witness=False):
    # a fresh restore per chaos test: injected corruption must never be
    # able to leak into the session-scoped service other tests share
    return BatchingServer(
        restore_service(env["path"]),
        batch_size=4,
        deadline_s=60.0,
        cache=cache,
        fault_plans=plans,
        engine_kwargs={"paranoid": True},
        vm_witness=vm_witness,
    )


@pytest.mark.parametrize(
    "kind,plan", CASES, ids=[f"{k}-{p.kind}" for k, p in CASES]
)
def test_no_corrupt_response_escapes(kind, plan, all_envs):
    env = all_envs[kind]
    cache = ResultCache(256)
    server = _fresh_server(env, [plan], cache=cache)
    outcomes = asyncio.run(_submit_all(server, env["queries"][:4]))
    assert server.stats["faulted_batches"] == server.stats["batches"] == 1
    # every future resolved exceptionally — not one wrong value came back
    assert all(isinstance(o, InvariantViolation) for o in outcomes), outcomes
    # and nothing from the faulted batch reached the cache
    assert len(cache) == 0
    assert cache.counters()["misses"] == 4 and cache.counters()["hits"] == 0
    _assert_cache_clean(cache)


@pytest.mark.parametrize(
    "kind", ["pointloc", "linepoly"]
)
@pytest.mark.parametrize(
    "plan_kind", ["perturb_sort_key", "corrupt_route_payload", "drop_transfer"]
)
def test_primitive_plans_have_no_surface_on_hierdag_path(
    kind, plan_kind, all_envs
):
    # the hierdag multisearch charges its sorts/routes analytically and
    # never crosses a sort/route/transfer primitive boundary, so these
    # plans find zero opportunities there — pin that asymmetry so a
    # chaos suite can't silently "pass" by never injecting
    env = all_envs[kind]
    plan = FaultPlan(seed=5, kind=plan_kind, rate=1.0, max_faults=None)
    server = _fresh_server(env, [plan])
    outcomes = asyncio.run(_submit_all(server, env["queries"][:4]))
    assert server.stats["faulted_batches"] == 0
    direct, _ = env["service"].run_batch(env["queries"][:4])
    eq = np.array_equal(np.array(outcomes), np.array(direct), equal_nan=True)
    assert eq, f"untouched batch must match direct on {kind}"


def test_recovery_after_faulted_batch(pointloc_env):
    env = pointloc_env
    cache = ResultCache(256)
    server = _fresh_server(env, [NAN_KEY], cache=cache)

    async def run():
        faulted = await _submit_all(server, env["queries"][:4])
        server.fault_plans = ()  # the chaos window closes
        clean = await _submit_all(server, env["queries"][:4])
        return faulted, clean

    faulted, clean = asyncio.run(run())
    assert all(isinstance(o, InvariantViolation) for o in faulted)
    direct, _ = env["service"].run_batch(env["queries"][:4])
    assert np.array_equal(np.array(clean), np.array(direct))
    # the clean batch repopulated the cache; the faulted one never did
    assert len(cache) == 4
    _assert_cache_clean(cache)
    assert server.stats["faulted_batches"] == 1
    assert server.stats["batches"] == 2


def test_fault_free_paranoid_batch_is_clean(pointloc_env):
    # sanity for the harness itself: paranoid without injection passes
    # and answers match the plain engine
    env = pointloc_env
    server = BatchingServer(
        env["service"], batch_size=8, deadline_s=60.0, engine_kwargs={"paranoid": True}
    )
    results = asyncio.run(_submit_all(server, env["queries"][:8]))
    direct, _ = env["service"].run_batch(env["queries"][:8])
    assert np.array_equal(np.array(results), np.array(direct))
    assert server.stats["faulted_batches"] == 0


def test_injection_is_deterministic(pointloc_env):
    # identical plans and loads produce identical injection outcomes —
    # the chaos suite itself is reproducible
    env = pointloc_env

    def run_once():
        server = _fresh_server(env, [NAN_KEY])
        outcomes = asyncio.run(_submit_all(server, env["queries"][:4]))
        return [str(o) for o in outcomes]

    assert run_once() == run_once()


# -- the cycle-accurate witness ---------------------------------------------


@pytest.mark.parametrize("plan_kind", VM_FAULT_KINDS)
def test_vm_fault_mid_request_faults_the_whole_batch(plan_kind, pointloc_env):
    # a step-level fault in the witness VM fires *before* any answer is
    # computed: every future resolves exceptionally, nothing is cached
    env = pointloc_env
    cache = ResultCache(256)
    plan = FaultPlan(seed=5, kind=plan_kind, rate=1.0, max_faults=None)
    server = _fresh_server(env, [plan], cache=cache, vm_witness=True)
    outcomes = asyncio.run(_submit_all(server, env["queries"][:4]))
    assert server.stats["faulted_batches"] == server.stats["batches"] == 1
    assert all(isinstance(o, InvariantViolation) for o in outcomes), outcomes
    assert all("vm:" in str(o) for o in outcomes)
    assert len(cache) == 0
    _assert_cache_clean(cache)
    # the batch died in pre-flight: no engine steps were ever charged
    assert server.stats["mesh_steps"] == 0.0


def test_clean_vm_witness_is_transparent(pointloc_env):
    # with no installed faults the witness adds steps to the witness
    # counter only; answers are byte-identical to a direct batch
    env = pointloc_env
    server = _fresh_server(env, [], vm_witness=True)
    results = asyncio.run(_submit_all(server, env["queries"][:4]))
    direct, _ = env["service"].run_batch(env["queries"][:4])
    assert np.array_equal(np.array(results), np.array(direct))
    assert server.stats["faulted_batches"] == 0
    assert server.stats["vm_witness_steps"] > 0


def test_vm_witness_ignores_engine_level_plans(pointloc_env):
    # engine fault kinds have no surface inside the witness VM — the
    # batch must fault (or not) exactly as it would without the witness
    env = pointloc_env
    server = _fresh_server(env, [NAN_KEY], vm_witness=True)
    outcomes = asyncio.run(_submit_all(server, env["queries"][:4]))
    assert all(isinstance(o, InvariantViolation) for o in outcomes)
    # the NaN query fault fired at the engine boundary, not in the VM
    assert all("vm:" not in str(o) for o in outcomes)


def test_vm_witness_recovery(pointloc_env):
    # after the chaos window closes, the same server serves cleanly and
    # the witness keeps running on every flush
    env = pointloc_env
    plan = FaultPlan(seed=5, kind="vm_flip_word", rate=1.0, max_faults=None)
    cache = ResultCache(256)
    server = _fresh_server(env, [plan], cache=cache, vm_witness=True)

    async def run():
        faulted = await _submit_all(server, env["queries"][:4])
        server.fault_plans = ()
        clean = await _submit_all(server, env["queries"][:4])
        return faulted, clean

    faulted, clean = asyncio.run(run())
    assert all(isinstance(o, InvariantViolation) for o in faulted)
    direct, _ = env["service"].run_batch(env["queries"][:4])
    assert np.array_equal(np.array(clean), np.array(direct))
    assert len(cache) == 4
    _assert_cache_clean(cache)
    assert server.stats["vm_witness_steps"] > 0
