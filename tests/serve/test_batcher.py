"""Batching front-end: flush state machine, cache, and the acceptance
property — serving a load through any batch/deadline/cache configuration
is byte-identical to running the same queries as one direct batch."""

import asyncio

import numpy as np
import pytest

from repro.serve import BatchingServer, ResultCache, drain_cache_counters


def _packed(results, kind):
    out = np.stack([np.asarray(r) for r in results])
    return out


def _equal(a, b, kind):
    if kind == "linepoly":  # planes carry NaN for intersecting lines
        return np.array_equal(a, b, equal_nan=True)
    return np.array_equal(a, b)


async def _serve(service, queries, **server_kwargs):
    server = BatchingServer(service, **server_kwargs)
    results = await server.submit_many(queries)
    await server.drain()
    return results, server


class TestByteIdentity:
    @pytest.mark.parametrize("kind", ["pointloc", "linepoly", "interval"])
    @pytest.mark.parametrize("batch_size", [1, 3, 16, 1000])
    @pytest.mark.parametrize("cached", [False, True])
    def test_any_batching_equals_one_direct_batch(
        self, kind, batch_size, cached, all_envs
    ):
        env = all_envs[kind]
        direct, _ = env["service"].run_batch(env["queries"])
        results, server = asyncio.run(
            _serve(
                env["service"],
                env["queries"],
                batch_size=batch_size,
                deadline_s=0.005,
                cache=ResultCache(256) if cached else None,
            )
        )
        assert _equal(
            _packed(results, kind), _packed(direct, kind), kind
        ), f"batched {kind} answers diverge at batch_size={batch_size}"
        assert server.stats["queries"] == len(env["queries"])

    @pytest.mark.parametrize("kind", ["pointloc", "linepoly", "interval"])
    def test_cached_resubmission_is_identical(self, kind, all_envs):
        env = all_envs[kind]

        async def twice():
            server = BatchingServer(
                env["service"], batch_size=8, deadline_s=0.005, cache=ResultCache(512)
            )
            first = await server.submit_many(env["queries"])
            batches_before = server.stats["batches"]
            steps_before = server.stats["mesh_steps"]
            second = await server.submit_many(env["queries"])
            return first, second, server, batches_before, steps_before

        first, second, server, batches_before, steps_before = asyncio.run(twice())
        assert _equal(_packed(first, kind), _packed(second, kind), kind)
        # the second pass never touched the mesh
        assert server.stats["batches"] == batches_before
        assert server.stats["mesh_steps"] == steps_before
        assert server.stats["cache_hits"] == len(env["queries"])


class TestFlushStateMachine:
    def test_size_flush(self, pointloc_env):
        results, server = asyncio.run(
            _serve(
                pointloc_env["service"],
                pointloc_env["queries"][:16],
                batch_size=4,
                deadline_s=60.0,  # never fires: size does all the flushing
            )
        )
        assert len(results) == 16
        assert server.stats["flush_size"] == 4
        assert server.stats["flush_deadline"] == 0
        assert server.pending == 0

    def test_deadline_flush(self, pointloc_env):
        # batch larger than the load: only the deadline can flush it
        results, server = asyncio.run(
            _serve(
                pointloc_env["service"],
                pointloc_env["queries"][:6],
                batch_size=1000,
                deadline_s=0.002,
            )
        )
        assert len(results) == 6
        assert server.stats["flush_deadline"] >= 1
        assert server.stats["flush_size"] == 0

    def test_drain_flush(self, pointloc_env):
        async def run():
            server = BatchingServer(
                pointloc_env["service"], batch_size=1000, deadline_s=60.0
            )
            tasks = [
                asyncio.ensure_future(server.submit(q))
                for q in pointloc_env["queries"][:5]
            ]
            await asyncio.sleep(0)  # let the submits enqueue
            assert server.pending == 5
            await server.drain()
            return await asyncio.gather(*tasks), server

        results, server = asyncio.run(run())
        assert len(results) == 5
        assert server.stats["flush_drain"] == 1
        assert server.pending == 0

    def test_mesh_steps_accumulate(self, pointloc_env):
        _, server = asyncio.run(
            _serve(
                pointloc_env["service"],
                pointloc_env["queries"][:8],
                batch_size=4,
                deadline_s=60.0,
            )
        )
        direct, steps = pointloc_env["service"].run_batch(pointloc_env["queries"][:4])
        assert server.stats["batches"] == 2
        assert server.stats["mesh_steps"] == pytest.approx(2 * steps)

    def test_submit_rejects_multirow(self, pointloc_env):
        async def run():
            server = BatchingServer(pointloc_env["service"], batch_size=2)
            await server.submit(pointloc_env["queries"][:3])

        with pytest.raises(ValueError, match="single query"):
            asyncio.run(run())

    def test_constructor_validation(self, pointloc_env):
        with pytest.raises(ValueError, match="batch_size"):
            BatchingServer(pointloc_env["service"], batch_size=0)
        with pytest.raises(ValueError, match="deadline_s"):
            BatchingServer(pointloc_env["service"], deadline_s=0.0)


class TestCache:
    def test_lru_eviction(self, pointloc_env):
        cache = ResultCache(capacity=4)
        asyncio.run(
            _serve(
                pointloc_env["service"],
                pointloc_env["queries"][:10],
                batch_size=10,
                deadline_s=0.005,
                cache=cache,
            )
        )
        assert len(cache) == 4
        assert cache.evictions == 6
        counters = cache.counters()
        assert counters["entries"] == 4 and counters["misses"] == 10

    def test_keys_pinned_to_snapshot_id(self, pointloc_env, interval_env):
        # same query bytes against different snapshots must not collide
        from repro.serve import query_cache_key

        q = np.array([0.5, 0.5])
        k1 = query_cache_key(pointloc_env["snapshot"].snapshot_id, q)
        k2 = query_cache_key(interval_env["snapshot"].snapshot_id, q)
        assert k1 != k2
        assert k1 == query_cache_key(
            pointloc_env["snapshot"].snapshot_id, q.astype(np.float32)
        )

    def test_process_wide_counters_drain(self, pointloc_env):
        drain_cache_counters()  # scope to this test
        asyncio.run(
            _serve(
                pointloc_env["service"],
                pointloc_env["queries"][:6],
                batch_size=3,
                deadline_s=0.005,
                cache=ResultCache(64),
            )
        )
        totals = drain_cache_counters()
        assert totals["misses"] == 6
        assert drain_cache_counters() == {"hits": 0, "misses": 0, "coalesced": 0}

    def test_hit_events_reach_trace_spans(self, pointloc_env):
        # cache hits/misses annotate the ambient span like the argsort memo
        from repro.mesh.trace import Tracer, ambient

        tracer = Tracer("serving")

        async def run():
            server = BatchingServer(
                pointloc_env["service"],
                batch_size=4,
                deadline_s=0.005,
                cache=ResultCache(64),
            )
            await server.submit_many(pointloc_env["queries"][:4])
            await server.submit_many(pointloc_env["queries"][:4])

        with ambient(tracer):
            asyncio.run(run())
        assert tracer.root.events.get("result-cache:miss") == 4
        assert tracer.root.events.get("result-cache:hit") == 4


class TestShutdown:
    def test_close_drains_then_rejects_typed(self, pointloc_env):
        """Post-close submits fail fast with ServerClosed; everything
        accepted before the close still resolves normally."""
        from repro.serve import ServerClosed

        async def run():
            server = BatchingServer(
                pointloc_env["service"], batch_size=1000, deadline_s=60.0
            )
            tasks = [
                asyncio.ensure_future(server.submit(q))
                for q in pointloc_env["queries"][:5]
            ]
            await asyncio.sleep(0)
            assert server.pending == 5
            await server.close()
            accepted = await asyncio.gather(*tasks)
            assert server.closed
            with pytest.raises(ServerClosed):
                await server.submit(pointloc_env["queries"][0])
            await server.close()  # idempotent
            return accepted, server

        accepted, server = asyncio.run(run())
        assert len(accepted) == 5
        assert server.pending == 0
        direct, _ = pointloc_env["service"].run_batch(pointloc_env["queries"][:5])
        assert _equal(_packed(accepted, "pointloc"), _packed(direct, "pointloc"), "pointloc")

    def test_submit_racing_close_never_strands_a_future(self, pointloc_env):
        """A submit issued after close() raises synchronously — it never
        creates a future that nothing will resolve."""
        from repro.serve import ServerClosed

        async def run():
            server = BatchingServer(
                pointloc_env["service"], batch_size=4, deadline_s=0.005
            )
            await server.close()
            for q in pointloc_env["queries"][:3]:
                with pytest.raises(ServerClosed):
                    await server.submit(q)
            assert server.pending == 0
            assert server.stats["queries"] == 0

        asyncio.run(run())


class TestSingleFlight:
    def test_concurrent_identical_misses_coalesce(self, pointloc_env):
        """N concurrent submits of one uncached query run one computation:
        one batch slot, N identical answers, N-1 coalesced."""
        q = pointloc_env["queries"][0]
        direct, _ = pointloc_env["service"].run_batch(q[None, :])

        async def run():
            server = BatchingServer(
                pointloc_env["service"],
                batch_size=8,
                deadline_s=0.01,
                cache=ResultCache(64),
            )
            results = await asyncio.gather(*(server.submit(q) for _ in range(6)))
            return results, server

        results, server = asyncio.run(run())
        assert all(np.array_equal(r, direct[0]) for r in results)
        assert server.stats["coalesced"] == 5
        assert server.stats["batches"] == 1
        # the flushed batch held one row, not six
        direct_steps = pointloc_env["service"].run_batch(q[None, :])[1]
        assert server.stats["mesh_steps"] == direct_steps

    def test_coalesced_events_reach_trace(self, pointloc_env):
        from repro.mesh.trace import Tracer, ambient

        q = pointloc_env["queries"][1]
        tracer = Tracer("serving")

        async def run():
            server = BatchingServer(
                pointloc_env["service"],
                batch_size=8,
                deadline_s=0.01,
                cache=ResultCache(64),
            )
            await asyncio.gather(*(server.submit(q) for _ in range(3)))

        with ambient(tracer):
            asyncio.run(run())
        assert tracer.root.events.get("result-cache:coalesced") == 2

    def test_faulted_leader_propagates_to_followers(self, interval_env):
        """Coalesced followers of a faulted batch get the same typed
        exception as the leader — never a stale or partial result."""
        from repro.mesh.faults import FaultPlan, InvariantViolation
        from repro.serve import restore_service

        q = interval_env["queries"][0]
        others = interval_env["queries"][1:4]
        plan = FaultPlan(seed=5, kind="perturb_sort_key", rate=1.0, max_faults=None)
        cache = ResultCache(64)

        async def run():
            server = BatchingServer(
                restore_service(interval_env["path"]),
                batch_size=8,
                deadline_s=0.01,
                cache=cache,
                fault_plans=[plan],
                engine_kwargs={"paranoid": True},
            )
            # three submits of q coalesce to one slot; the other rows give
            # the flush a real sort surface for the fault to corrupt
            subs = [server.submit(q) for _ in range(3)]
            subs += [server.submit(row) for row in others]
            settled = await asyncio.gather(*subs, return_exceptions=True)
            return settled, server

        settled, server = asyncio.run(run())
        assert len(settled) == 6
        assert all(isinstance(r, InvariantViolation) for r in settled)
        assert server.stats["coalesced"] == 2
        assert len(cache) == 0

    def test_distinct_queries_do_not_coalesce(self, pointloc_env):
        async def run():
            server = BatchingServer(
                pointloc_env["service"],
                batch_size=8,
                deadline_s=0.01,
                cache=ResultCache(64),
            )
            await server.submit_many(pointloc_env["queries"][:4])
            return server

        server = asyncio.run(run())
        assert server.stats["coalesced"] == 0
        assert server.stats["queries"] == 4
