"""Shared fixtures for the serving-layer suite.

Structures are built and snapshotted once per session (construction is
the expensive part); every test restores or serves from these.
"""

import numpy as np
import pytest

from repro.serve import restore_service, snapshot_intervals, snapshot_linepoly, snapshot_pointloc

RNG_SEED = 1331


@pytest.fixture(scope="session")
def pointloc_env(tmp_path_factory):
    rng = np.random.default_rng(RNG_SEED)
    sites = rng.random((48, 2))
    path = tmp_path_factory.mktemp("serve") / "pointloc.npz"
    snapshot = snapshot_pointloc(path, sites, seed=7)
    queries = rng.random((37, 2))
    return {
        "kind": "pointloc",
        "path": path,
        "snapshot": snapshot,
        "service": restore_service(path),
        "sites": sites,
        "queries": queries,
    }


@pytest.fixture(scope="session")
def linepoly_env(tmp_path_factory):
    rng = np.random.default_rng(RNG_SEED + 1)
    points = rng.random((40, 3))
    path = tmp_path_factory.mktemp("serve") / "linepoly.npz"
    snapshot = snapshot_linepoly(path, points, seed=7)
    p0 = rng.random((11, 3)) * 4.0 - 1.5
    direction = rng.standard_normal((11, 3))
    return {
        "kind": "linepoly",
        "path": path,
        "snapshot": snapshot,
        "service": restore_service(path),
        "points": points,
        "queries": np.concatenate([p0, direction], axis=1),
    }


@pytest.fixture(scope="session")
def interval_env(tmp_path_factory):
    rng = np.random.default_rng(RNG_SEED + 2)
    lefts = rng.random(80)
    rights = lefts + rng.random(80) * 0.3
    path = tmp_path_factory.mktemp("serve") / "interval.npz"
    snapshot = snapshot_intervals(path, lefts, rights, k=2)
    a = rng.random(23)
    return {
        "kind": "interval",
        "path": path,
        "snapshot": snapshot,
        "service": restore_service(path),
        "lefts": lefts,
        "rights": rights,
        "queries": np.stack([a, a + 0.15], axis=1),
    }


@pytest.fixture(scope="session")
def all_envs(pointloc_env, linepoly_env, interval_env):
    return {
        "pointloc": pointloc_env,
        "linepoly": linepoly_env,
        "interval": interval_env,
    }
