"""Tier-2 smoke check: every registered bench runs under the parallel runner.

Each bench's *smallest* sweep point is measured once per engine mode; the
runner exits non-zero if any point's fast/slow mesh-step counts diverge.
The whole sweep stays well under a minute on a few cores.

Deselected from the default (tier-1) run by the ``smoke`` marker; run it
with::

    PYTHONPATH=src python -m pytest -m smoke -q
"""

import os

import pytest

from repro.bench.runner import main


@pytest.mark.smoke
def test_all_benches_smoke():
    jobs = max(1, (os.cpu_count() or 2) - 1)
    assert main(["--all", "--smoke", "--jobs", str(jobs), "--no-write"]) == 0
