"""Tests for ear-clipping triangulation."""

import numpy as np
import pytest

from repro.geometry.primitives import orient2d
from repro.geometry.triangulate import ear_clip


def total_area(polygon: np.ndarray, tris: np.ndarray) -> float:
    s = 0.0
    for a, b, c in tris:
        s += orient2d(polygon[a], polygon[b], polygon[c]) / 2
    return s


def polygon_area(polygon: np.ndarray) -> float:
    x, y = polygon[:, 0], polygon[:, 1]
    return 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))


class TestEarClip:
    def test_triangle(self):
        poly = np.array([[0, 0], [1, 0], [0, 1]], float)
        tris = ear_clip(poly)
        assert tris.shape == (1, 3)

    def test_square(self):
        poly = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], float)
        tris = ear_clip(poly)
        assert tris.shape == (2, 3)
        assert total_area(poly, tris) == pytest.approx(1.0)

    def test_convex_polygon(self):
        theta = np.linspace(0, 2 * np.pi, 12, endpoint=False)
        poly = np.stack([np.cos(theta), np.sin(theta)], axis=1)
        tris = ear_clip(poly)
        assert tris.shape == (10, 3)
        assert total_area(poly, tris) == pytest.approx(polygon_area(poly))

    def test_nonconvex_star(self):
        outer = np.stack(
            [2 * np.cos(np.linspace(0, 2 * np.pi, 5, endpoint=False)),
             2 * np.sin(np.linspace(0, 2 * np.pi, 5, endpoint=False))], axis=1
        )
        inner = np.stack(
            [0.7 * np.cos(np.linspace(0, 2 * np.pi, 5, endpoint=False) + np.pi / 5),
             0.7 * np.sin(np.linspace(0, 2 * np.pi, 5, endpoint=False) + np.pi / 5)],
            axis=1,
        )
        poly = np.empty((10, 2))
        poly[0::2] = outer
        poly[1::2] = inner
        tris = ear_clip(poly)
        assert tris.shape == (8, 3)
        assert total_area(poly, tris) == pytest.approx(polygon_area(poly))

    def test_all_triangles_ccw(self):
        theta = np.linspace(0, 2 * np.pi, 9, endpoint=False)
        poly = np.stack([np.cos(theta), 2 * np.sin(theta)], axis=1)
        for a, b, c in ear_clip(poly):
            assert orient2d(poly[a], poly[b], poly[c]) > 0

    def test_cw_polygon_rejected(self):
        poly = np.array([[0, 0], [0, 1], [1, 1], [1, 0]], float)
        with pytest.raises(ValueError, match="counter-clockwise"):
            ear_clip(poly)

    def test_too_few_vertices(self):
        with pytest.raises(ValueError):
            ear_clip(np.array([[0, 0], [1, 0]], float))

    def test_random_star_shaped_holes(self):
        # the shapes Kirkpatrick produces: links of removed vertices
        rng = np.random.default_rng(0)
        for _ in range(20):
            k = int(rng.integers(4, 9))
            radii = rng.uniform(0.5, 2.0, k)
            theta = np.sort(rng.uniform(0, 2 * np.pi, k))
            gaps = np.diff(np.concatenate([theta, [theta[0] + 2 * np.pi]]))
            # simple (star-shaped around the origin) only if the origin is
            # interior: all angular gaps below pi
            if np.min(gaps) < 0.1 or np.max(gaps) >= np.pi - 0.1:
                continue
            poly = np.stack([radii * np.cos(theta), radii * np.sin(theta)], axis=1)
            tris = ear_clip(poly)
            assert tris.shape[0] == k - 2
            assert total_area(poly, tris) == pytest.approx(polygon_area(poly))
