"""Tests for the Kirkpatrick subdivision hierarchy."""

import numpy as np
import pytest

from repro.bench.workloads import uniform_sites
from repro.core.model import QuerySet, run_reference
from repro.geometry.kirkpatrick import (
    build_kirkpatrick,
    kirkpatrick_structure,
)
from repro.geometry.primitives import orient2d, point_in_triangle


@pytest.fixture(scope="module")
def hier():
    return build_kirkpatrick(uniform_sites(120, seed=0), seed=1)


class TestConstruction:
    def test_coarsest_level_is_one_triangle(self, hier):
        assert hier.levels[-1].triangles.shape[0] == 1

    def test_levels_shrink_geometrically(self, hier):
        sizes = [lvl.triangles.shape[0] for lvl in hier.levels]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        # constant-fraction removal => O(log n) levels
        assert len(sizes) <= 4 * np.log2(sizes[0]) + 8

    def test_level_areas_all_equal_bounding_triangle(self, hier):
        # every level triangulates the same region
        pts = hier.points
        areas = []
        for lvl in hier.levels:
            t = lvl.triangles
            a = orient2d(pts[t[:, 0]], pts[t[:, 1]], pts[t[:, 2]]) / 2
            assert (a > 0).all()  # CCW everywhere
            areas.append(float(a.sum()))
        assert np.allclose(areas, areas[0], rtol=1e-9)

    def test_children_bounded(self, hier):
        for lvl in hier.levels[1:]:
            assert max(len(k) for k in lvl.children) <= 10

    def test_children_cover_parent(self, hier):
        # a triangle's children must cover it: sample interior points
        rng = np.random.default_rng(2)
        pts = hier.points
        for li in range(1, len(hier.levels)):
            lvl = hier.levels[li]
            finer = hier.levels[li - 1].triangles
            for ti in rng.integers(0, lvl.triangles.shape[0], 5):
                t = lvl.triangles[ti]
                a, b, c = pts[t[0]], pts[t[1]], pts[t[2]]
                w = rng.dirichlet([1, 1, 1])
                p = w[0] * a + w[1] * b + w[2] * c
                if not point_in_triangle(p, a, b, c):
                    continue
                hit = any(
                    point_in_triangle(
                        p, pts[finer[ch][0]], pts[finer[ch][1]], pts[finer[ch][2]]
                    )
                    for ch in lvl.children[ti]
                )
                assert hit

    def test_corner_vertices_never_removed(self, hier):
        n_corner = hier.points.shape[0] - 3
        for lvl in hier.levels:
            verts = set(lvl.triangles.ravel().tolist())
            assert {n_corner, n_corner + 1, n_corner + 2} <= verts


class TestLocate:
    def test_locate_agrees_with_brute(self, hier):
        rng = np.random.default_rng(3)
        q = rng.uniform(0, 100, (100, 2))
        fast = hier.locate(q)
        pts, tris = hier.points, hier.base_triangles
        for p, t in zip(q, fast):
            assert t >= 0
            assert point_in_triangle(p, pts[tris[t, 0]], pts[tris[t, 1]], pts[tris[t, 2]])

    def test_point_outside_bounding_triangle(self, hier):
        q = np.array([[1e9, 1e9]])
        assert hier.locate(q)[0] == -1
        assert hier.locate_brute(q)[0] == -1


class TestSearchStructure:
    def test_is_hierarchical_dag(self, hier):
        st, mu = kirkpatrick_structure(hier)
        assert mu > 1.0
        sizes = np.bincount(st.level)
        assert sizes[0] == 1
        assert (np.diff(sizes) > 0).all()
        # edges go one level down
        src = np.repeat(np.arange(st.n_vertices), st.adjacency.shape[1])
        dst = st.adjacency.ravel()
        live = dst >= 0
        assert (st.level[dst[live]] == st.level[src[live]] + 1).all()

    def test_multisearch_descent_locates(self, hier):
        st, _ = kirkpatrick_structure(hier)
        rng = np.random.default_rng(4)
        q = rng.uniform(0, 100, (50, 2))
        res = run_reference(st, q, 0)
        pts = hier.points
        L = len(hier.levels)
        sizes = [hier.levels[L - 1 - d].triangles.shape[0] for d in range(L)]
        starts = np.concatenate([[0], np.cumsum(sizes)])
        for p, path in zip(q, res.paths()):
            assert len(path) == L
            tri = hier.base_triangles[path[-1] - starts[L - 1]]
            assert point_in_triangle(p, pts[tri[0]], pts[tri[1]], pts[tri[2]])

    def test_outside_point_stops_at_root(self, hier):
        st, _ = kirkpatrick_structure(hier)
        res = run_reference(st, np.array([[1e9, 1e9]]), 0)
        assert res.paths()[0] == [0]


class TestSmallInputs:
    def test_few_sites(self):
        hier = build_kirkpatrick(uniform_sites(5, seed=5), seed=2)
        assert hier.levels[-1].triangles.shape[0] == 1
        q = uniform_sites(20, seed=6)
        got = hier.locate(q)
        assert (got >= 0).all()

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            build_kirkpatrick(np.zeros((5, 3)))
