"""Tests for the Dobkin-Kirkpatrick hierarchy."""

import numpy as np
import pytest

from repro.bench.workloads import sphere_points
from repro.core.model import run_reference
from repro.geometry.dk3d import (
    build_dk_hierarchy,
    dk_support_structure,
    dk_tangent_structure,
)
from repro.geometry.independent import greedy_low_degree_independent_set


@pytest.fixture(scope="module")
def hier():
    return build_dk_hierarchy(sphere_points(300, seed=0), seed=1)


class TestConstruction:
    def test_vertex_sets_nested(self, hier):
        for a, b in zip(hier.hulls, hier.hulls[1:]):
            assert set(b.vertices) < set(a.vertices)

    def test_geometric_shrink(self, hier):
        sizes = [h.vertices.size for h in hier.hulls]
        assert all(b <= 0.95 * a for a, b in zip(sizes, sizes[1:]))
        assert len(sizes) <= 8 * np.log2(sizes[0])

    def test_top_is_constant_size(self, hier):
        assert hier.hulls[-1].vertices.size <= 8

    def test_inner_hulls_contained(self, hier):
        # every coarser hull is contained in the finest
        fine = hier.hulls[0]
        for h in hier.hulls[1:]:
            assert fine.contains(hier.points[h.vertices]).all()

    def test_adjacency_matches_edges(self, hier):
        for h, adj in zip(hier.hulls, hier.adjacency):
            edges = {tuple(e) for e in h.edges().tolist()}
            for v, nbrs in adj.items():
                for u in nbrs:
                    assert (min(u, v), max(u, v)) in edges


class TestSupportDescent:
    def test_matches_brute_force(self, hier):
        rng = np.random.default_rng(2)
        for d in rng.normal(size=(100, 3)):
            got = hier.support(d)
            val = hier.points[got] @ d
            best = hier.points[hier.hulls[0].vertices] @ d
            assert val == pytest.approx(best.max(), abs=1e-9)

    def test_axis_directions(self, hier):
        for axis in range(3):
            d = np.zeros(3)
            d[axis] = 1.0
            got = hier.support(d)
            assert hier.points[got, axis] == pytest.approx(
                hier.points[hier.hulls[0].vertices][:, axis].max()
            )


class TestSupportStructure:
    def test_multisearch_matches_brute(self, hier):
        st, orig = dk_support_structure(hier)
        rng = np.random.default_rng(3)
        dirs = rng.normal(size=(100, 3))
        res = run_reference(st, dirs, 0)
        for d, path in zip(dirs, res.paths()):
            v = orig[path[-1]]
            best = (hier.points[hier.hulls[0].vertices] @ d).max()
            assert hier.points[v] @ d == pytest.approx(best, abs=1e-9)

    def test_path_length_is_level_count(self, hier):
        st, _ = dk_support_structure(hier)
        res = run_reference(st, np.array([[1.0, 0.0, 0.0]]), 0)
        assert len(res.paths()[0]) == hier.n_levels + 1  # root + levels

    def test_structure_is_hierarchical_dag(self, hier):
        st, _ = dk_support_structure(hier)
        sizes = np.bincount(st.level)
        assert sizes[0] == 1
        assert (np.diff(sizes[1:]) >= 0).all()

    def test_overflow_guard(self, hier):
        with pytest.raises(ValueError):
            dk_support_structure(hier, max_candidates=2)


class TestTangentStructure:
    def test_descent_terminates_at_finest_level(self, hier):
        # end-to-end tangent correctness is covered by the linepoly app
        # tests; here we check the DAG walk itself: every query descends
        # exactly one vertex per level and stops at the finest level
        st, orig = dk_tangent_structure(hier)
        from repro.apps.linepoly import line_keys

        rng = np.random.default_rng(4)
        p0 = rng.normal(scale=3.0, size=(20, 3))
        dirs = rng.normal(size=(20, 3))
        keys = line_keys(p0, dirs)
        ref = run_reference(st, keys, 0, state_width=1)
        for path in ref.paths():
            assert len(path) == hier.n_levels + 1
            assert st.level[path[-1]] == hier.n_levels
            assert (np.diff(st.level[np.array(path)]) == 1).all()
        assert (orig[[p[-1] for p in ref.paths()]] >= 0).all()


class TestIndependentSet:
    def test_is_independent(self):
        neighbors = {0: {1, 2}, 1: {0}, 2: {0}, 3: set()}
        chosen = greedy_low_degree_independent_set(neighbors, {0, 1, 2, 3}, seed=0)
        for v in chosen:
            assert not (neighbors[v] & set(chosen))

    def test_degree_filter(self):
        neighbors = {0: {1, 2, 3}, 1: {0}, 2: {0}, 3: {0}}
        chosen = greedy_low_degree_independent_set(
            neighbors, {0, 1, 2, 3}, max_degree=1, seed=0
        )
        assert 0 not in chosen
        assert chosen  # the leaves qualify

    def test_threshold_relaxes_when_needed(self):
        neighbors = {0: {1, 2}, 1: {0, 2}, 2: {0, 1}}
        chosen = greedy_low_degree_independent_set(
            neighbors, {0, 1, 2}, max_degree=0, seed=0
        )
        assert len(chosen) == 1  # triangle: relaxed to degree 2, one picked

    def test_constant_fraction_on_hull_graphs(self):
        hier = build_dk_hierarchy(sphere_points(200, seed=5), seed=2)
        sizes = [h.vertices.size for h in hier.hulls]
        for a, b in zip(sizes, sizes[1:]):
            assert b <= a * 0.98
            assert b >= a * 0.3  # greedy removes a bounded fraction
