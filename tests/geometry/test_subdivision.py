"""Tests for polygonal subdivisions and mesh face location ([Kir83] proper)."""

import numpy as np
import pytest

from repro.apps.pointloc import locate_faces_mesh
from repro.bench.workloads import uniform_sites
from repro.geometry.kirkpatrick import build_kirkpatrick
from repro.geometry.primitives import point_in_triangle
from repro.geometry.subdivision import merged_face_subdivision
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def hier():
    return build_kirkpatrick(uniform_sites(120, seed=0), seed=1)


class TestMergedFaceSubdivision:
    def test_covers_all_triangles(self, hier):
        sub = merged_face_subdivision(hier, merge_fraction=0.5, seed=2)
        assert sub.face_of_triangle.shape[0] == hier.base_triangles.shape[0]
        assert (sub.face_of_triangle >= 0).all()

    def test_zero_fraction_keeps_triangles(self, hier):
        sub = merged_face_subdivision(hier, merge_fraction=0.0, seed=3)
        assert sub.n_faces == hier.base_triangles.shape[0]
        assert (sub.face_sizes() == 1).all()

    def test_higher_fraction_fewer_faces(self, hier):
        f_lo = merged_face_subdivision(hier, merge_fraction=0.3, seed=4).n_faces
        f_hi = merged_face_subdivision(hier, merge_fraction=0.9, seed=4).n_faces
        assert f_hi < f_lo

    def test_faces_are_edge_connected(self, hier):
        import networkx as nx

        sub = merged_face_subdivision(hier, merge_fraction=0.7, seed=5)
        tris = sub.triangles
        g = nx.Graph()
        g.add_nodes_from(range(tris.shape[0]))
        edge_owner = {}
        for t, (a, b, c) in enumerate(tris):
            for u, v in ((a, b), (b, c), (c, a)):
                key = (min(int(u), int(v)), max(int(u), int(v)))
                if key in edge_owner:
                    if sub.face_of_triangle[edge_owner[key]] == sub.face_of_triangle[t]:
                        g.add_edge(edge_owner[key], t)
                else:
                    edge_owner[key] = t
        for f in range(sub.n_faces):
            members = set(np.flatnonzero(sub.face_of_triangle == f).tolist())
            assert nx.is_connected(g.subgraph(members))

    def test_bad_fraction_rejected(self, hier):
        with pytest.raises(ValueError):
            merged_face_subdivision(hier, merge_fraction=1.0)

    def test_oracle_consistent_with_triangles(self, hier):
        sub = merged_face_subdivision(hier, merge_fraction=0.5, seed=6)
        rng = make_rng(7)
        q = rng.uniform(0, 100, (50, 2))
        faces = sub.locate_face_brute(q)
        pts, tris = sub.points, sub.triangles
        for p, f in zip(q, faces):
            assert f >= 0
            # p is in some triangle of face f
            members = np.flatnonzero(sub.face_of_triangle == f)
            hit = any(
                point_in_triangle(
                    p, pts[tris[t, 0]], pts[tris[t, 1]], pts[tris[t, 2]]
                )
                for t in members
            )
            assert hit


class TestFaceLocationMesh:
    def test_matches_oracle(self):
        sites = uniform_sites(100, seed=8)
        q = make_rng(9).uniform(0, 100, (150, 2))
        run = locate_faces_mesh(sites, q, merge_fraction=0.7, seed=10)
        want = run.subdivision.locate_face_brute(q)
        assert (run.face == want).all()
        assert run.mesh_steps > 0

    def test_faces_are_polygonal(self):
        sites = uniform_sites(100, seed=11)
        q = make_rng(12).uniform(0, 100, (20, 2))
        run = locate_faces_mesh(sites, q, merge_fraction=0.8, seed=13)
        assert run.subdivision.face_sizes().max() >= 3  # real polygons exist

    def test_outside_query(self):
        sites = uniform_sites(50, seed=14)
        q = np.array([[1e9, 1e9]])
        run = locate_faces_mesh(sites, q, seed=15)
        assert run.face[0] == -1
