"""The modelled construction layer (repro.mesh.construct).

Three properties gate the tentpole:

* **determinism** — modelled construction steps are a pure function of
  the input: repeated builds with the same seed charge the identical
  step total *and* the identical (label, steps) history;
* **span accounting** — with a tracer attached, the span tree sums
  exactly to ``clock.time``, parallel folds included;
* **output equivalence** — a builder's outputs are byte-identical
  whether or not a construction/tracer/paranoid engine is attached: the
  charges are bookkeeping, never data flow.

Plus the E11 span gate: every converted builder charges nonzero modelled
steps under its named span.
"""

import numpy as np
import pytest

from repro.bench.workloads import random_intervals, sphere_points
from repro.geometry.dk3d import build_dk_hierarchy, dk_support_structure
from repro.geometry.hull3d import convex_hull_3d
from repro.geometry.kirkpatrick import build_kirkpatrick, kirkpatrick_structure
from repro.geometry.subdivision import merged_face_subdivision
from repro.geometry.triangulate import ear_clip
from repro.intervals.interval_tree import IntervalTree
from repro.intervals.structure import build_interval_structure
from repro.mesh.construct import CONSTRUCT_LABELS, Construction
from repro.mesh.trace import Tracer


def _kirk_points(n=80, seed=7):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, (n, 2))


def _build_kirk(construct):
    hier = build_kirkpatrick(_kirk_points(), seed=3, construct=construct)
    st, mu = kirkpatrick_structure(hier, construct=construct)
    return hier, st, mu


def _build_dk(construct):
    pts = sphere_points(120, seed=5)
    hier = build_dk_hierarchy(pts, seed=2, construct=construct)
    st, orig = dk_support_structure(hier, construct=construct)
    return hier, st, orig


class TestDeterminism:
    @pytest.mark.parametrize("build", [_build_kirk, _build_dk],
                             ids=["kirkpatrick", "dk3d"])
    def test_steps_and_history_repeat(self, build):
        runs = []
        for _ in range(2):
            c = Construction(128)
            c.clock.record_history = True
            build(c)
            runs.append((c.steps, list(c.clock.history)))
        assert runs[0][1], "history must actually record the charges"
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]  # same charges, same order, same labels
        assert runs[0][0] > 0

    def test_history_labels_are_construct_namespaced(self):
        c = Construction(128)
        c.clock.record_history = True
        _build_kirk(c)
        labels = {label for label, _ in c.clock.history}
        assert labels <= set(CONSTRUCT_LABELS)
        assert "construct:sort" in labels
        assert "construct:independent-set" in labels


class TestSpanAccounting:
    @pytest.mark.parametrize("build", [_build_kirk, _build_dk],
                             ids=["kirkpatrick", "dk3d"])
    def test_spans_sum_exactly_to_clock(self, build):
        c = Construction(128)
        tracer = Tracer(clock=c.clock)
        build(c)
        assert tracer.total_steps == c.clock.time

    def test_parallel_folds_are_counted(self):
        # kirkpatrick's hole retriangulation runs in parallel branches;
        # the fold credit (max instead of sum) must appear in the tree
        c = Construction(128)
        tracer = Tracer(clock=c.clock)
        _build_kirk(c)
        folds = []

        def walk(span):
            folds.append(span.fold)
            for child in span.children:
                walk(child)

        walk(tracer.root)
        assert any(f < 0 for f in folds)
        assert tracer.total_steps == c.clock.time


def _all_outputs():
    """Every converted builder's outputs, with default constructions."""
    hier, st, mu = _build_kirk(Construction(128))
    out = [lv.triangles for lv in hier.levels] + [st.adjacency, st.payload, mu]
    dkh, dks, orig = _build_dk(Construction(128))
    out += [h.faces for h in dkh.hulls] + [dks.adjacency, orig]
    hull = convex_hull_3d(sphere_points(90, seed=11), seed=11)
    out += [hull.faces, hull.normals]
    sub = merged_face_subdivision(hier, seed=4)
    out += [sub.face_of_triangle]
    ang = np.linspace(0, 2 * np.pi, 9, endpoint=False)
    poly = np.stack([np.cos(ang), np.sin(ang)], axis=1)
    out += [ear_clip(poly)]
    lo, hi = random_intervals(64, seed=9)
    ist = build_interval_structure(IntervalTree(lo, hi))
    out += [ist.structure.adjacency, ist.structure.payload,
            ist.splitting1.comp, ist.splitting2.comp]
    return out


class TestOutputEquivalence:
    def test_outputs_independent_of_metadata_modes(self, monkeypatch):
        plain = _all_outputs()
        # tracing on, paranoid on: only span/step metadata may change
        monkeypatch.setenv("REPRO_TRACE", "1")
        monkeypatch.setenv("REPRO_PARANOID", "1")
        from repro.mesh.trace import drain_traced_tracers

        traced_out = _all_outputs()
        drain_traced_tracers()
        assert len(plain) == len(traced_out)
        for a, b in zip(plain, traced_out):
            np.testing.assert_array_equal(a, b)


class TestEveryBuilderCharges:
    def test_kirkpatrick(self):
        c = Construction(128)
        build_kirkpatrick(_kirk_points(), seed=3, construct=c)
        assert c.steps > 0

    def test_kirkpatrick_structure(self):
        hier = build_kirkpatrick(_kirk_points(), seed=3)
        c = Construction(128)
        kirkpatrick_structure(hier, construct=c)
        assert c.steps > 0

    def test_dk3d(self):
        c = Construction(128)
        build_dk_hierarchy(sphere_points(96, seed=5), seed=2, construct=c)
        assert c.steps > 0

    def test_hull3d(self):
        c = Construction(96)
        convex_hull_3d(sphere_points(96, seed=11), seed=11, construct=c)
        assert c.steps > 0

    def test_subdivision(self):
        hier = build_kirkpatrick(_kirk_points(48), seed=3)
        c = Construction(128)
        merged_face_subdivision(hier, seed=4, construct=c)
        assert c.steps > 0

    def test_triangulate(self):
        ang = np.linspace(0, 2 * np.pi, 9, endpoint=False)
        poly = np.stack([np.cos(ang), np.sin(ang)], axis=1)
        c = Construction(16)
        ear_clip(poly, construct=c)
        assert c.steps > 0

    def test_interval_structure(self):
        lo, hi = random_intervals(64, seed=9)
        c = Construction(256)
        build_interval_structure(IntervalTree(lo, hi), construct=c)
        assert c.steps > 0

    def test_submesh_sizing_caps_at_engine(self):
        c = Construction(64)
        assert c.region(10_000).side == c.engine.side
        assert c.region(1).side == 1
        assert c.region(None) is c.engine.root
