"""Tests for the incremental 3-d convex hull."""

import numpy as np
import pytest
from scipy.spatial import ConvexHull

from repro.bench.workloads import sphere_points
from repro.geometry.hull3d import convex_hull_3d


def assert_watertight(hull) -> None:
    e = np.concatenate(
        [hull.faces[:, [0, 1]], hull.faces[:, [1, 2]], hull.faces[:, [2, 0]]]
    )
    e.sort(axis=1)
    _, counts = np.unique(e, axis=0, return_counts=True)
    assert (counts == 2).all()


class TestAgainstScipy:
    @pytest.mark.parametrize("n,seed", [(8, 0), (30, 1), (100, 2), (500, 3)])
    def test_gaussian_clouds(self, n, seed):
        pts = np.random.default_rng(seed).normal(size=(n, 3))
        ours = convex_hull_3d(pts, seed=seed)
        ref = ConvexHull(pts)
        assert set(ours.vertices) == set(ref.vertices)
        assert ours.volume() == pytest.approx(ref.volume, rel=1e-9)

    def test_sphere_points_all_on_hull(self):
        pts = sphere_points(200, seed=4)
        ours = convex_hull_3d(pts, seed=4)
        assert ours.vertices.size == 200

    def test_insertion_order_invariance(self):
        pts = np.random.default_rng(5).normal(size=(60, 3))
        v1 = convex_hull_3d(pts, seed=1).volume()
        v2 = convex_hull_3d(pts, seed=99).volume()
        v3 = convex_hull_3d(pts, seed=None).volume()
        assert v1 == pytest.approx(v2) == pytest.approx(v3)


class TestInvariants:
    def test_watertight(self):
        pts = np.random.default_rng(6).normal(size=(150, 3))
        assert_watertight(convex_hull_3d(pts, seed=0))

    def test_all_points_inside(self):
        pts = np.random.default_rng(7).normal(size=(150, 3))
        h = convex_hull_3d(pts, seed=0)
        assert h.contains(pts).all()

    def test_normals_outward(self):
        pts = sphere_points(80, seed=8)
        h = convex_hull_3d(pts, seed=0)
        centroid = pts.mean(axis=0)
        assert (h.normals @ centroid - h.offsets < 0).all()

    def test_euler_formula(self):
        pts = sphere_points(120, seed=9)
        h = convex_hull_3d(pts, seed=0)
        V = h.vertices.size
        F = h.faces.shape[0]
        E = h.edges().shape[0]
        assert V - E + F == 2

    def test_support_is_extreme(self):
        pts = np.random.default_rng(10).normal(size=(100, 3))
        h = convex_hull_3d(pts, seed=0)
        for d in np.random.default_rng(11).normal(size=(20, 3)):
            s = h.support(d)
            assert pts[s] @ d == pytest.approx((pts @ d).max())

    def test_contains_distinguishes(self):
        pts = sphere_points(100, seed=12)
        h = convex_hull_3d(pts, seed=0)
        assert h.contains(np.zeros((1, 3)))[0]
        assert not h.contains(np.array([[2.0, 0.0, 0.0]]))[0]


class TestDegenerate:
    def test_simplex(self):
        pts = np.array([[0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1]], float)
        h = convex_hull_3d(pts)
        assert h.faces.shape[0] == 4
        assert h.volume() == pytest.approx(1 / 6)

    def test_interior_points_excluded(self):
        pts = np.vstack(
            [sphere_points(30, seed=13), np.random.default_rng(14).normal(scale=0.1, size=(30, 3))]
        )
        h = convex_hull_3d(pts, seed=0)
        assert set(h.vertices) == set(range(30))

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            convex_hull_3d(np.zeros((3, 3)))

    def test_coplanar_rejected(self):
        pts = np.zeros((10, 3))
        pts[:, :2] = np.random.default_rng(15).normal(size=(10, 2))
        with pytest.raises(ValueError, match="coplanar"):
            convex_hull_3d(pts)

    def test_collinear_rejected(self):
        pts = np.outer(np.arange(5, dtype=float), [1.0, 2.0, 3.0])
        with pytest.raises(ValueError, match="collinear"):
            convex_hull_3d(pts)

    def test_coincident_rejected(self):
        with pytest.raises(ValueError, match="coincide"):
            convex_hull_3d(np.ones((5, 3)))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            convex_hull_3d(np.zeros((5, 2)))
