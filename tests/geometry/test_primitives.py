"""Tests for geometric predicates."""

import numpy as np
import pytest

from repro.geometry.primitives import (
    orient2d,
    plane_from_points,
    point_in_triangle,
    signed_volume,
    triangles_overlap,
)


class TestOrient2d:
    def test_ccw_positive(self):
        assert orient2d([0, 0], [1, 0], [0, 1]) > 0

    def test_cw_negative(self):
        assert orient2d([0, 0], [0, 1], [1, 0]) < 0

    def test_collinear_zero(self):
        assert orient2d([0, 0], [1, 1], [2, 2]) == 0

    def test_vectorized(self):
        a = np.zeros((5, 2))
        b = np.tile([1.0, 0.0], (5, 1))
        c = np.tile([0.0, 1.0], (5, 1))
        assert (orient2d(a, b, c) == 1.0).all()

    def test_value_is_twice_area(self):
        assert orient2d([0, 0], [2, 0], [0, 2]) == pytest.approx(4.0)


class TestPointInTriangle:
    tri = (np.array([0.0, 0.0]), np.array([4.0, 0.0]), np.array([0.0, 4.0]))

    def test_interior(self):
        assert point_in_triangle(np.array([1.0, 1.0]), *self.tri)

    def test_exterior(self):
        assert not point_in_triangle(np.array([3.0, 3.0]), *self.tri)

    def test_boundary_inclusive(self):
        assert point_in_triangle(np.array([2.0, 0.0]), *self.tri)
        assert point_in_triangle(np.array([0.0, 0.0]), *self.tri)

    def test_orientation_agnostic(self):
        a, b, c = self.tri
        p = np.array([1.0, 1.0])
        assert point_in_triangle(p, a, c, b)  # clockwise triangle

    def test_vectorized(self):
        p = np.array([[1.0, 1.0], [5.0, 5.0]])
        a = np.tile(self.tri[0], (2, 1))
        b = np.tile(self.tri[1], (2, 1))
        c = np.tile(self.tri[2], (2, 1))
        assert point_in_triangle(p, a, b, c).tolist() == [True, False]


class TestTrianglesOverlap:
    def test_clear_overlap(self):
        t1 = np.array([[0, 0], [4, 0], [0, 4]], float)
        t2 = np.array([[1, 1], [5, 1], [1, 5]], float)
        assert triangles_overlap(t1, t2)

    def test_disjoint(self):
        t1 = np.array([[0, 0], [1, 0], [0, 1]], float)
        t2 = np.array([[5, 5], [6, 5], [5, 6]], float)
        assert not triangles_overlap(t1, t2)

    def test_shared_edge_is_not_overlap(self):
        t1 = np.array([[0, 0], [2, 0], [0, 2]], float)
        t2 = np.array([[2, 0], [0, 2], [2, 2]], float)
        assert not triangles_overlap(t1, t2)

    def test_shared_vertex_is_not_overlap(self):
        t1 = np.array([[0, 0], [1, 0], [0, 1]], float)
        t2 = np.array([[0, 0], [-1, 0], [0, -1]], float)
        assert not triangles_overlap(t1, t2)

    def test_containment(self):
        outer = np.array([[0, 0], [10, 0], [0, 10]], float)
        inner = np.array([[1, 1], [2, 1], [1, 2]], float)
        assert triangles_overlap(outer, inner)
        assert triangles_overlap(inner, outer)


class TestPlane:
    def test_plane_through_points(self):
        n, d = plane_from_points([0, 0, 1], [1, 0, 1], [0, 1, 1])
        assert np.allclose(np.abs(n), [0, 0, 1])
        assert abs(d) == pytest.approx(1.0)

    def test_unit_normal(self):
        n, _ = plane_from_points([0, 0, 0], [3, 0, 0], [0, 5, 0])
        assert np.linalg.norm(n) == pytest.approx(1.0)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            plane_from_points([0, 0, 0], [1, 1, 1], [2, 2, 2])


class TestSignedVolume:
    def test_positive_orientation(self):
        v = signed_volume([0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, 1])
        assert v == pytest.approx(1.0)

    def test_sign_flips(self):
        v = signed_volume([0, 0, 0], [1, 0, 0], [0, 1, 0], [0, 0, -1])
        assert v == pytest.approx(-1.0)

    def test_coplanar_zero(self):
        assert signed_volume([0, 0, 0], [1, 0, 0], [0, 1, 0], [1, 1, 0]) == 0.0
