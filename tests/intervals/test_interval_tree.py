"""Tests for the sequential interval tree substrate."""

import numpy as np
import pytest

from repro.bench.workloads import random_intervals
from repro.intervals.interval_tree import IntervalTree, brute_force_intersections


def random_tree(n=200, seed=0):
    lefts, rights = random_intervals(n, seed=seed, domain=100.0, mean_len=8.0)
    return IntervalTree(lefts, rights), lefts, rights


class TestConstruction:
    def test_every_interval_stored_once(self):
        tree, lefts, _ = random_tree()
        stored = np.concatenate([nd.by_left for nd in tree.nodes])
        assert sorted(stored.tolist()) == list(range(lefts.size))

    def test_intervals_contain_their_center(self):
        tree, lefts, rights = random_tree()
        for nd in tree.nodes:
            for i in nd.by_left:
                assert lefts[i] <= nd.center <= rights[i]

    def test_lists_sorted(self):
        tree, lefts, rights = random_tree()
        for nd in tree.nodes:
            assert (np.diff(lefts[nd.by_left]) >= 0).all()
            assert (np.diff(rights[nd.by_right]) <= 0).all()

    def test_balanced_height(self):
        tree, lefts, _ = random_tree(500, seed=1)
        assert tree.height <= 2 * np.log2(2 * lefts.size) + 2

    def test_bst_ordering_of_centers(self):
        tree, _, _ = random_tree()

        def check(idx, lo, hi):
            if idx < 0:
                return
            nd = tree.nodes[idx]
            assert lo < nd.center < hi
            check(nd.left, lo, nd.center)
            check(nd.right, nd.center, hi)

        check(tree.root, -np.inf, np.inf)

    def test_empty_tree(self):
        tree = IntervalTree(np.empty(0), np.empty(0))
        assert tree.stab(5.0).size == 0

    def test_rejects_inverted_interval(self):
        with pytest.raises(ValueError):
            IntervalTree(np.array([2.0]), np.array([1.0]))

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            IntervalTree(np.array([1.0, 2.0]), np.array([3.0]))


class TestStab:
    def test_matches_brute_force(self):
        tree, lefts, rights = random_tree(300, seed=2)
        rng = np.random.default_rng(3)
        for q in rng.uniform(-5, 105, 100):
            got = set(tree.stab(q).tolist())
            want = set(np.flatnonzero((lefts <= q) & (rights >= q)).tolist())
            assert got == want

    def test_stab_at_endpoints(self):
        lefts = np.array([0.0, 1.0, 2.0])
        rights = np.array([1.0, 3.0, 2.5])
        tree = IntervalTree(lefts, rights)
        assert set(tree.stab(1.0).tolist()) == {0, 1}
        assert set(tree.stab(2.5).tolist()) == {1, 2}

    def test_stab_outside_domain(self):
        tree, _, _ = random_tree()
        assert tree.stab(-1000.0).size == 0
        assert tree.stab(1000.0).size == 0

    def test_point_intervals(self):
        lefts = np.array([1.0, 2.0, 2.0])
        rights = np.array([1.0, 2.0, 5.0])
        tree = IntervalTree(lefts, rights)
        assert set(tree.stab(2.0).tolist()) == {1, 2}


class TestQueryInterval:
    def test_matches_brute_force(self):
        tree, lefts, rights = random_tree(300, seed=4)
        rng = np.random.default_rng(5)
        for _ in range(100):
            a = rng.uniform(-5, 100)
            b = a + rng.uniform(0, 20)
            got = set(tree.query_interval(a, b).tolist())
            want = set(brute_force_intersections(lefts, rights, a, b).tolist())
            assert got == want

    def test_count_matches_report(self):
        tree, lefts, rights = random_tree(200, seed=6)
        rng = np.random.default_rng(7)
        for _ in range(50):
            a = rng.uniform(0, 100)
            b = a + rng.uniform(0, 10)
            assert tree.count_intersections(a, b) == tree.query_interval(a, b).size

    def test_degenerate_query_is_stab(self):
        tree, lefts, rights = random_tree(100, seed=8)
        q = 37.5
        assert set(tree.query_interval(q, q).tolist()) == set(tree.stab(q).tolist())

    def test_rejects_inverted_query(self):
        tree, _, _ = random_tree(10, seed=9)
        with pytest.raises(ValueError):
            tree.query_interval(5.0, 4.0)
        with pytest.raises(ValueError):
            tree.count_intersections(5.0, 4.0)

    def test_covering_query_returns_all(self):
        tree, lefts, rights = random_tree(50, seed=10)
        got = tree.query_interval(lefts.min() - 1, rights.max() + 1)
        assert got.size == 50
