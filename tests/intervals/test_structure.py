"""Tests for the flattened interval-tree search structure."""

import numpy as np
import pytest

from repro.bench.workloads import random_intervals
from repro.core.model import run_reference
from repro.graphs.validate import check_splitter
from repro.intervals.interval_tree import IntervalTree
from repro.intervals.structure import build_interval_structure


@pytest.fixture(scope="module")
def setup():
    lefts, rights = random_intervals(250, seed=0, domain=100.0, mean_len=10.0)
    itree = IntervalTree(lefts, rights)
    istruct = build_interval_structure(itree)
    return itree, istruct, lefts, rights


class TestFlattening:
    def test_vertex_count(self, setup):
        itree, istruct, lefts, _ = setup
        V = istruct.structure.n_vertices
        assert V == len(itree.nodes) + 2 * lefts.size

    def test_constant_degree(self, setup):
        _, istruct, _, _ = setup
        assert istruct.structure.max_degree <= 4

    def test_chain_payload_caches_next_key(self, setup):
        itree, istruct, lefts, rights = setup
        st = istruct.structure
        kinds = st.payload[:, 0]
        lch = np.flatnonzero(kinds == 1.0)
        for v in lch[:50]:
            nxt = st.adjacency[v, 0]
            if nxt >= 0:
                assert st.payload[v, 3] == st.payload[nxt, 1]
            else:
                assert st.payload[v, 3] == np.inf

    def test_vertex_interval_mapping(self, setup):
        itree, istruct, lefts, _ = setup
        counts = np.bincount(
            istruct.vertex_interval[istruct.vertex_interval >= 0],
            minlength=lefts.size,
        )
        assert (counts == 2).all()  # each interval in one left + one right chain


class TestStabSemantics:
    def test_stab_matches_interval_tree(self, setup):
        itree, istruct, lefts, rights = setup
        st = istruct.structure
        rng = np.random.default_rng(1)
        qs = rng.uniform(-5, 105, 100)
        res = run_reference(st, qs, istruct.root_vertex, state_width=1)
        for q, path, count in zip(qs, res.paths(), res.state[:, 0]):
            ids = istruct.vertex_interval[np.array(path)]
            got = set(ids[ids >= 0].tolist())
            want = set(itree.stab(q).tolist())
            assert got == want, q
            assert int(count) == len(want)

    def test_path_length_output_sensitive(self, setup):
        itree, istruct, lefts, rights = setup
        st = istruct.structure
        res = run_reference(
            st, np.array([50.0, -1000.0]), istruct.root_vertex, state_width=1
        )
        p_mid, p_out = res.paths()
        k_mid = itree.stab(50.0).size
        assert len(p_mid) <= itree.height + k_mid + 2
        assert len(p_out) <= itree.height + 1

    def test_every_chain_visit_is_a_hit(self, setup):
        itree, istruct, lefts, rights = setup
        st = istruct.structure
        rng = np.random.default_rng(2)
        qs = rng.uniform(0, 100, 50)
        res = run_reference(st, qs, istruct.root_vertex, state_width=1)
        for q, path in zip(qs, res.paths()):
            ids = istruct.vertex_interval[np.array(path)]
            for i in ids[ids >= 0]:
                assert lefts[i] <= q <= rights[i]


class TestSplittings:
    def test_component_size_law(self, setup):
        _, istruct, _, _ = setup
        n = istruct.size
        check_splitter(
            _labeling_view(istruct.splitting1), istruct.structure.adjacency, n, 0.5,
            constant=12.0,
        )
        check_splitter(
            _labeling_view(istruct.splitting2), istruct.structure.adjacency, n, 0.5,
            constant=12.0,
        )

    def test_chains_cut_from_nodes(self, setup):
        itree, istruct, _, _ = setup
        st = istruct.structure
        for sp in (istruct.splitting1, istruct.splitting2):
            for u in range(len(itree.nodes)):
                for head in st.adjacency[u, 2:4]:
                    if head >= 0:
                        assert sp.comp[head] != sp.comp[u]

    def test_chain_cut_offsets_differ(self):
        # S2's chain segment boundaries must be offset from S1's so a long
        # chain's borders are far apart between the two splittings.  Build
        # a dataset where one point is covered by every interval: the root
        # node's chains then exceed several segments.
        n = 400
        lefts = np.linspace(0, 10, n)
        rights = np.full(n, 100.0)  # all intervals cover [10, 100]
        itree = IntervalTree(lefts, rights)
        istruct = build_interval_structure(itree)
        st = istruct.structure
        sp1, sp2 = istruct.splitting1, istruct.splitting2
        chain = np.flatnonzero(st.payload[:, 0] > 0)
        s1_only = s2_only = 0
        for v in chain:
            nxt = st.adjacency[v, 0]
            if nxt >= 0:
                c1 = sp1.comp[v] != sp1.comp[nxt]
                c2 = sp2.comp[v] != sp2.comp[nxt]
                s1_only += int(c1 and not c2)
                s2_only += int(c2 and not c1)
        # every interior chain cut of one splitting is interior to the
        # other's segment (the half-segment offset)
        assert s1_only > 0 and s2_only > 0


def _labeling_view(splitting):
    """Adapt a Splitting to the SplitterLabeling interface for check_splitter."""

    class _View:
        comp = splitting.comp
        n_components = splitting.n_components

        @staticmethod
        def component_sizes(children):
            return splitting.sizes

    return _View()
