"""Sharded vs. single-mesh byte-identity across all six app drivers.

The anchor property of :mod:`repro.mesh.shard`: at ``k_chip == 1`` the
sharded engine *is* the flat engine — byte-identical outputs AND total
charged steps — and at ``k_chip > 1`` outputs stay byte-identical while
the charges decompose into per-chiplet phases plus ``xchip:*``
exchanges whose span sums still equal ``clock.time`` exactly.

Engine-taking drivers (linepoly, pointloc, interval count/report) run
with explicit engines of one global shape; host-only drivers
(hullmerge, separation, tangent) have their inputs round-tripped
through a :class:`ShardedRecordSet` (one-shard, multi-chip, and
non-square chip grids) which must be lossless.
"""

import numpy as np
import pytest

from repro.apps.hullmerge import convex_hull_divide_conquer
from repro.apps.interval_search import (
    count_intersections_mesh,
    report_intersections_mesh,
    setup_interval_search,
)
from repro.apps.linepoly import line_polyhedron_queries
from repro.apps.pointloc import locate_points_mesh
from repro.apps.separation import separate_polyhedra
from repro.apps.tangent import tangent_cones
from repro.bench.workloads import random_intervals, random_lines, sphere_points
from repro.geometry.dk3d import build_dk_hierarchy
from repro.geometry.hull3d import convex_hull_3d
from repro.mesh.engine import MeshEngine
from repro.mesh.shard import MultiChipMesh, ShardedMeshEngine, ShardedRecordSet
from repro.mesh.trace import Tracer
from repro.util.rng import make_rng

#: one global mesh side shared by every engine in this suite, so flat and
#: sharded runs always agree on geometry (32 = 1024 processors covers
#: every workload below)
SIDE = 32


def flat_engine() -> MeshEngine:
    return MeshEngine(SIDE)


def sharded_engine(k_chip: int, **kwargs) -> ShardedMeshEngine:
    assert SIDE % k_chip == 0
    return ShardedMeshEngine(MultiChipMesh.square(k_chip, SIDE // k_chip), **kwargs)


def run_pair(run, k_chip: int):
    """Run ``run(engine)`` on a flat and a sharded engine; return both sides."""
    flat = flat_engine()
    sharded = sharded_engine(k_chip)
    for eng in (flat, sharded):
        eng.clock.record_history = True
    tracer = Tracer(clock=sharded.clock)
    flat_out = run(flat)
    sharded_out = run(sharded)
    return flat, flat_out, sharded, sharded_out, tracer


def assert_xchip_behavior(flat, sharded, tracer, k_chip: int) -> None:
    """k=1: identical steps, no xchip labels.  k>1: xchip labels, exact spans."""
    xchip = [lbl for lbl, _ in sharded.clock.history if lbl.startswith("xchip:")]
    if k_chip == 1:
        assert sharded.clock.time == flat.clock.time
        assert sharded.clock.history == flat.clock.history
        assert not xchip
    else:
        assert xchip, "a spanning run must cross off-chip links"
        assert sharded.clock.time != flat.clock.time
    # the tracer's parallel-fold bookkeeping keeps span sums exact
    assert tracer.total_steps == pytest.approx(sharded.clock.time, abs=1e-9)


# -- engine-taking drivers ----------------------------------------------------


@pytest.fixture(scope="module")
def linepoly_inputs():
    hier = build_dk_hierarchy(sphere_points(120, seed=0), seed=1)
    p0, d = random_lines(40, seed=3)
    return hier, p0, d


@pytest.fixture(scope="module")
def pointloc_inputs():
    rng = make_rng(0)
    sites = rng.uniform(0.0, 1.0, (60, 2))
    queries = rng.uniform(0.1, 0.9, (50, 2))
    return sites, queries


@pytest.fixture(scope="module")
def interval_inputs():
    lefts, rights = random_intervals(200, seed=0, domain=100.0, mean_len=6.0)
    rng = make_rng(1)
    a = rng.uniform(0, 100, 40)
    b = a + rng.uniform(0.1, 15, 40)
    return setup_interval_search(lefts, rights), a, b


@pytest.mark.parametrize("k_chip", [1, 2, 4])
class TestEngineTakingDrivers:
    def test_linepoly(self, linepoly_inputs, k_chip):
        hier, p0, d = linepoly_inputs

        def run(engine):
            return line_polyhedron_queries(hier, p0, d, engine=engine)

        flat, f, sharded, s, tracer = run_pair(run, k_chip)
        assert s.intersects.tobytes() == f.intersects.tobytes()
        assert s.tangent_left.tobytes() == f.tangent_left.tobytes()
        assert s.tangent_right.tobytes() == f.tangent_right.tobytes()
        assert s.planes.tobytes() == f.planes.tobytes()
        if k_chip == 1:
            assert s.mesh_steps == f.mesh_steps
        assert_xchip_behavior(flat, sharded, tracer, k_chip)

    def test_pointloc(self, pointloc_inputs, k_chip):
        sites, queries = pointloc_inputs

        def run(engine):
            return locate_points_mesh(sites, queries, seed=1, engine=engine)

        flat, f, sharded, s, tracer = run_pair(run, k_chip)
        assert s.triangle.tobytes() == f.triangle.tobytes()
        if k_chip == 1:
            assert s.mesh_steps == f.mesh_steps
        assert_xchip_behavior(flat, sharded, tracer, k_chip)

    def test_interval_count(self, interval_inputs, k_chip):
        setup, a, b = interval_inputs

        def run(engine):
            return count_intersections_mesh(setup, a, b, engine=engine)

        flat, (fc, fs), sharded, (sc, ss), tracer = run_pair(run, k_chip)
        assert sc.tobytes() == fc.tobytes()
        if k_chip == 1:
            assert ss == fs
        assert_xchip_behavior(flat, sharded, tracer, k_chip)

    def test_interval_report(self, interval_inputs, k_chip):
        setup, a, b = interval_inputs

        def run(engine):
            return report_intersections_mesh(setup, a, b, engine=engine)

        flat, (fr, fs), sharded, (sr, ss), tracer = run_pair(run, k_chip)
        assert len(sr) == len(fr)
        for got, want in zip(sr, fr):
            assert got.tobytes() == want.tobytes()
        if k_chip == 1:
            assert ss == fs
        assert_xchip_behavior(flat, sharded, tracer, k_chip)


# -- host-only drivers: lossless sharded storage round-trip -------------------

#: degenerate shapes ride along here: one shard, a multi-chip square
#: grid, and a non-square chip grid
ROUNDTRIP_MESHES = [
    MultiChipMesh.square(1, 8),
    MultiChipMesh.square(2, 4),
    MultiChipMesh(2, 3, 4),
]


def roundtrip(points: np.ndarray, mesh: MultiChipMesh) -> np.ndarray:
    with ShardedRecordSet({"pts": points}, mesh) as rs:
        out = rs.gather()["pts"]
    assert out.tobytes() == points.tobytes()
    return out


@pytest.mark.parametrize("mesh", ROUNDTRIP_MESHES, ids=lambda m: f"{m.chip_rows}x{m.chip_cols}")
class TestHostOnlyDrivers:
    def test_hullmerge(self, mesh):
        pts = sphere_points(150, seed=5)
        direct = convex_hull_divide_conquer(pts, leaf_size=40)
        via_shards = convex_hull_divide_conquer(roundtrip(pts, mesh), leaf_size=40)
        assert via_shards.faces.tobytes() == direct.faces.tobytes()
        assert via_shards.volume() == direct.volume()

    def test_separation(self, mesh):
        A = sphere_points(100, seed=0)
        B = sphere_points(100, seed=1000, center=(3.0, 0.0, 0.0))
        direct = separate_polyhedra(
            build_dk_hierarchy(A, seed=1), build_dk_hierarchy(B, seed=2)
        )
        via = separate_polyhedra(
            build_dk_hierarchy(roundtrip(A, mesh), seed=1),
            build_dk_hierarchy(roundtrip(B, mesh), seed=2),
        )
        assert via.separated == direct.separated
        assert via.iterations == direct.iterations
        assert via.plane.tobytes() == direct.plane.tobytes()

    def test_tangent(self, mesh):
        pts = sphere_points(80, seed=7)
        queries = sphere_points(10, seed=9) * 3.0
        direct = tangent_cones(convex_hull_3d(pts, seed=8), queries)
        via = tangent_cones(
            convex_hull_3d(roundtrip(pts, mesh), seed=8), roundtrip(queries, mesh)
        )
        assert len(via) == len(direct)
        for got, want in zip(via, direct):
            assert got.inside == want.inside
            assert got.planes.tobytes() == want.planes.tobytes()
            assert got.contacts.tobytes() == want.contacts.tobytes()


def test_empty_shards_roundtrip():
    """n < num_chips leaves shards empty without losing a record."""
    mesh = MultiChipMesh.square(4, 2)  # 16 shards
    pts = sphere_points(5, seed=11)
    assert roundtrip(pts, mesh).shape == pts.shape
