"""ShardedRecordSet: decomposed primitives, process shards, xchip faults.

The storage layer under the multi-chip mesh must reproduce the flat
numpy reference byte-for-byte (stable sort, inclusive scan on integers,
permutation route), whether shards are in-process slices or spawned
child processes, and every off-chip fault kind must be caught at the
merge point by the paranoid checks.
"""

import numpy as np
import pytest

from repro.mesh.faults import (
    XCHIP_FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    InvariantViolation,
)
from repro.mesh.shard import (
    MultiChipMesh,
    ShardedMeshEngine,
    ShardedRecordSet,
    XChipCost,
)

MESHES = [
    MultiChipMesh.square(1, 8),
    MultiChipMesh.square(2, 4),
    MultiChipMesh(1, 3, 4),
    MultiChipMesh(3, 2, 2),
]

MESH_IDS = [f"{m.chip_rows}x{m.chip_cols}" for m in MESHES]


def make_columns(n: int, seed: int = 0) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {
        "key": rng.integers(0, max(1, n // 3), n),  # duplicate keys: stability matters
        "payload": rng.normal(size=n),
        "tag": np.arange(n, dtype=np.int64),
    }


@pytest.mark.parametrize("mesh", MESHES, ids=MESH_IDS)
@pytest.mark.parametrize("n", [0, 1, 5, 37, 200])
class TestAgainstNumpyReference:
    def test_sort_by_matches_flat_stable_sort(self, mesh, n):
        cols = make_columns(n)
        order = np.argsort(cols["key"], kind="stable")
        with ShardedRecordSet(cols, mesh) as rs:
            rs.sort_by("key")
            got = rs.gather()
        for name in cols:
            assert got[name].tobytes() == cols[name][order].tobytes()

    def test_scan_matches_flat_cumsum(self, mesh, n):
        cols = make_columns(n)
        with ShardedRecordSet(cols, mesh) as rs:
            got = rs.scan("key")
        assert got.tobytes() == np.cumsum(cols["key"]).tobytes()

    def test_scan_max_matches_flat_accumulate(self, mesh, n):
        cols = make_columns(n)
        with ShardedRecordSet(cols, mesh) as rs:
            got = rs.scan("key", op="max")
        assert got.tobytes() == np.maximum.accumulate(cols["key"]).tobytes()

    def test_route_matches_flat_permutation(self, mesh, n):
        cols = make_columns(n)
        rng = np.random.default_rng(99)
        cols["dest"] = rng.permutation(n).astype(np.int64)
        with ShardedRecordSet(cols, mesh) as rs:
            rs.route("dest")
            got = rs.gather()
        for name in cols:
            want = np.empty_like(cols[name])
            want[cols["dest"]] = cols[name]
            assert got[name].tobytes() == want.tobytes()


class TestShardingShape:
    def test_contiguous_equal_cuts(self):
        rs = ShardedRecordSet(make_columns(10), MultiChipMesh.square(2, 2))
        assert rs.num_shards == 4
        assert rs.shard_counts() == [2, 3, 2, 3]  # linspace cuts of 10 into 4

    def test_empty_shards_when_records_scarce(self):
        rs = ShardedRecordSet(make_columns(2), MultiChipMesh.square(4, 2))
        counts = rs.shard_counts()
        assert sum(counts) == 2 and len(counts) == 16
        rs.sort_by("key")  # empty shards must not break the merge
        assert len(rs.gather()["key"]) == 2

    def test_route_rejects_non_permutation(self):
        cols = make_columns(6)
        cols["dest"] = np.array([0, 1, 2, 3, 4, 9], dtype=np.int64)
        with ShardedRecordSet(cols, MultiChipMesh.square(2, 2)) as rs:
            with pytest.raises(InvariantViolation, match="permutation"):
                rs.route("dest")

    def test_engine_topology_must_match(self):
        eng = ShardedMeshEngine(MultiChipMesh.square(2, 4))
        with pytest.raises(ValueError, match="does not match"):
            ShardedRecordSet(make_columns(8), MultiChipMesh.square(1, 8), engine=eng)


class TestProcessShards:
    """Spawned shard children must be observationally identical."""

    def test_ops_byte_identical_to_in_process(self):
        mesh = MultiChipMesh.square(2, 2)
        cols = make_columns(40, seed=3)
        with ShardedRecordSet(cols, mesh) as local:
            local.sort_by("key")
            want_sorted = local.gather()
            want_scan = local.scan("tag")
        with ShardedRecordSet(cols, mesh, process=True) as procs:
            procs.sort_by("key")
            got_sorted = procs.gather()
            got_scan = procs.scan("tag")
        for name in cols:
            assert got_sorted[name].tobytes() == want_sorted[name].tobytes()
        assert got_scan.tobytes() == want_scan.tobytes()


class TestCharging:
    def test_single_shard_charges_flat(self):
        mesh = MultiChipMesh.square(1, 8)
        eng = ShardedMeshEngine(mesh)
        eng.clock.record_history = True
        with ShardedRecordSet(make_columns(30), mesh, engine=eng) as rs:
            rs.sort_by("key")
        labels = [lbl for lbl, _ in eng.clock.history]
        assert "shard:sort" in labels
        assert not [lbl for lbl in labels if lbl.startswith("xchip:")]

    def test_multi_shard_charges_intra_plus_exchange(self):
        mesh = MultiChipMesh.square(2, 4)
        eng = ShardedMeshEngine(mesh)
        eng.clock.record_history = True
        with ShardedRecordSet(make_columns(30), mesh, engine=eng) as rs:
            rs.sort_by("key")
            rs.scan("key")
        labels = [lbl for lbl, _ in eng.clock.history]
        assert "shard:sort" in labels and "shard:scan" in labels
        assert "xchip:sort" in labels and "xchip:scan" in labels
        assert eng.clock.time > 0

    def test_exchange_cost_scales_with_distance_and_volume(self):
        near = MultiChipMesh.square(2, 4, xchip=XChipCost(hop=4.0, bandwidth=1.0))
        far = MultiChipMesh.square(2, 4, xchip=XChipCost(hop=40.0, bandwidth=0.5))
        assert far.exchange_steps(2, 100) > near.exchange_steps(2, 100)
        assert near.exchange_steps(0, 100) == 0.0
        assert near.exchange_steps(1, 200) > near.exchange_steps(1, 100)


@pytest.mark.parametrize("kind", XCHIP_FAULT_KINDS)
class TestXChipFaults:
    """Both off-chip fault kinds must be caught at the merge point."""

    def faulted_engine(self, kind):
        mesh = MultiChipMesh.square(2, 4)
        eng = ShardedMeshEngine(mesh, paranoid=True)
        eng.faults = FaultInjector(FaultPlan(seed=3, kind=kind, rate=1.0))
        return mesh, eng

    def test_detected_during_sort(self, kind):
        mesh, eng = self.faulted_engine(kind)
        with ShardedRecordSet(make_columns(50), mesh, engine=eng) as rs:
            with pytest.raises(InvariantViolation, match="xchip:merge"):
                rs.sort_by("key")
        assert eng.faults.injected, "the injector must have actually fired"

    def test_detected_during_gather(self, kind):
        mesh, eng = self.faulted_engine(kind)
        with ShardedRecordSet(make_columns(50), mesh, engine=eng) as rs:
            with pytest.raises(InvariantViolation, match="xchip:merge"):
                rs.gather()

    def test_single_chip_has_no_offchip_links(self, kind):
        mesh = MultiChipMesh.square(1, 8)
        eng = ShardedMeshEngine(mesh, paranoid=True)
        eng.faults = FaultInjector(FaultPlan(seed=3, kind=kind, rate=1.0))
        with ShardedRecordSet(make_columns(50), mesh, engine=eng) as rs:
            rs.sort_by("key")
            rs.gather()
        assert not eng.faults.injected
