"""Tests for the figure reproductions F1-F5."""

import pytest

from repro.figures import figure1, figure2, figure3, figure4, figure5


class TestFigure1:
    def test_validates_and_reports(self):
        rep = figure1(height=8)
        assert rep.facts["height"] == 8
        assert rep.facts["mu"] == 2.0
        assert "L_8" in rep.rendering

    def test_varying_height(self):
        assert figure1(height=4).facts["vertices"] == 31


class TestFigure2:
    def test_splitter_facts(self):
        rep = figure2(height=8)
        assert rep.facts["components"] == 17  # 1 top + 16 subtrees
        assert rep.facts["cut_edges"] == 16
        # component sizes near sqrt(n)
        assert rep.facts["max_T_size"] <= 6 * rep.facts["sqrt_n"]

    def test_taller_tree(self):
        rep = figure2(height=10)
        assert rep.facts["components"] == 33


class TestFigure3:
    def test_distance_positive(self):
        rep = figure3(height=12)
        assert rep.facts["border_distance"] >= 1

    def test_distance_tracks_h_over_6(self):
        r12 = figure3(height=12)
        r24 = figure3(height=24)
        assert r24.facts["border_distance"] > r12.facts["border_distance"]
        # distance = h/6 - 1 for heights divisible by 6 (borders are the
        # level pairs around each cut)
        assert r24.facts["border_distance"] == pytest.approx(24 / 6 - 1)


class TestFigure4:
    def test_band_size_law_holds(self):
        rep = figure4(height=24)
        ratios = [v for k, v in rep.facts.items() if k.endswith("size_over_bound")]
        assert ratios and all(r <= 4.0 for r in ratios)

    def test_bstar_constant(self):
        for h in (16, 24, 40):
            rep = figure4(height=h)
            assert rep.facts["bstar_levels"] <= 10


class TestFigure5:
    def test_b1_size_law(self):
        rep = figure5(height=24)
        ratios = [v for k, v in rep.facts.items() if k.endswith("size_ratio")]
        assert ratios and all(r <= 8.0 for r in ratios)

    def test_rendering_mentions_both_parts(self):
        rep = figure5(height=24)
        assert "B_0^1" in rep.rendering and "B_0^2" in rep.rendering
