"""Tests for the hypercube comparator engine."""

import numpy as np
import pytest

from repro.core.baseline import synchronous_multisearch
from repro.core.model import QuerySet, run_reference
from repro.graphs.adapters import ktree_directed_structure
from repro.graphs.ktree import build_balanced_search_tree
from repro.hypercube import HypercubeEngine
from repro.mesh.engine import CapacityError, MeshEngine


class TestEngine:
    def test_size_and_diameter(self):
        eng = HypercubeEngine(6)
        assert eng.size == 64
        assert eng.side == 6

    def test_for_problem_rounds_up(self):
        assert HypercubeEngine.for_problem(100).dimension == 7
        assert HypercubeEngine.for_problem(128).dimension == 7
        assert HypercubeEngine.for_problem(1).dimension == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            HypercubeEngine(-1)
        with pytest.raises(ValueError):
            HypercubeEngine.for_problem(0)

    def test_rar_costs_diameter(self):
        eng = HypercubeEngine(8)
        (out,) = eng.root.rar(np.arange(10), np.arange(10) * 2)
        assert (out == np.arange(10) * 2).all()
        assert eng.clock.time == eng.cost.route * 8

    def test_sort_costs_d_squared(self):
        eng = HypercubeEngine(6)
        (out,) = eng.root.sort_by(np.array([3, 1, 2]))
        assert out.tolist() == [1, 2, 3]
        assert eng.clock.time == eng.cost.sort * 36

    def test_capacity(self):
        eng = HypercubeEngine(2, capacity=1)
        with pytest.raises(CapacityError):
            eng.root.check_capacity(5)

    def test_scan_reduce_broadcast(self):
        eng = HypercubeEngine(4)
        assert (eng.root.scan(np.ones(5, dtype=np.int64)) == np.arange(1, 6)).all()
        assert eng.root.reduce(np.arange(5)) == 10
        assert eng.root.broadcast(7) == 7


class TestDR90Multisearch:
    def test_synchronous_runs_unchanged_and_correct(self):
        t = build_balanced_search_tree(2, 8, seed=0)
        st = ktree_directed_structure(t)
        rng = np.random.default_rng(1)
        keys = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], 100)
        ref = run_reference(st, keys, 0)
        eng = HypercubeEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0, record_trace=True)
        res = synchronous_multisearch(eng, st, qs)
        assert qs.paths() == ref.paths()
        assert res.multisteps == t.height + 1

    def test_cost_is_r_times_log_n(self):
        t = build_balanced_search_tree(2, 8, seed=0)
        st = ktree_directed_structure(t)
        keys = t.leaf_keys[:16].astype(np.float64)
        eng = HypercubeEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0)
        res = synchronous_multisearch(eng, st, qs)
        per_step = eng.cost.route * eng.dimension + eng.cost.local
        assert res.mesh_steps == res.multisteps * per_step

    def test_hypercube_beats_mesh_synchronous(self):
        # the diameter gap: log n vs sqrt(n)
        t = build_balanced_search_tree(2, 10, seed=0)
        st = ktree_directed_structure(t)
        keys = t.leaf_keys[:64].astype(np.float64)
        hq = HypercubeEngine.for_problem(t.size)
        qs1 = QuerySet.start(keys, 0)
        hres = synchronous_multisearch(hq, st, qs1)
        me = MeshEngine.for_problem(t.size)
        qs2 = QuerySet.start(keys, 0)
        mres = synchronous_multisearch(me, st, qs2)
        assert hres.mesh_steps < mres.mesh_steps / 3
