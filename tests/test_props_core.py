"""Property-based tests for the multisearch core: the mesh algorithms must
reproduce the sequential oracle's search paths on randomized instances."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.alpha import alpha_multisearch
from repro.core.bands import compute_bands
from repro.core.hierdag import hierdag_multisearch
from repro.core.model import QuerySet, run_reference
from repro.core.splitters import normalize_splitting, splitting_from_labels
from repro.graphs.adapters import (
    hierdag_search_structure,
    ktree_directed_structure,
    ktree_rank_structure,
)
from repro.graphs.hierarchical import build_mu_ary_search_dag
from repro.graphs.ktree import build_balanced_search_tree, tree_from_keys
from repro.mesh.engine import MeshEngine


class TestHierDagProperty:
    @given(
        mu=st.integers(2, 3),
        height=st.integers(3, 8),
        seed=st.integers(0, 1000),
        m=st.integers(1, 64),
    )
    @settings(max_examples=20, deadline=None)
    def test_mesh_equals_oracle(self, mu, height, seed, m):
        dag, leaf_keys = build_mu_ary_search_dag(mu, height, seed=seed)
        stx = hierdag_search_structure(dag)
        rng = np.random.default_rng(seed + 1)
        keys = rng.uniform(leaf_keys[0] - 1, leaf_keys[-1] + 1, m)
        ref = run_reference(stx, keys, 0)
        eng = MeshEngine.for_problem(max(dag.size, m))
        qs = QuerySet.start(keys, 0, record_trace=True)
        hierdag_multisearch(eng, stx, qs, mu=float(mu), c=2)
        assert qs.paths() == ref.paths()


class TestAlphaProperty:
    @given(
        k=st.integers(2, 3),
        height=st.integers(2, 7),
        seed=st.integers(0, 1000),
        m=st.integers(1, 64),
        cut_frac=st.floats(0.2, 0.8),
    )
    @settings(max_examples=20, deadline=None)
    def test_mesh_equals_oracle_any_cut(self, k, height, seed, m, cut_frac):
        t = build_balanced_search_tree(k, height, seed=seed)
        stx = ktree_directed_structure(t)
        cut = min(max(1, int(round(cut_frac * height))), height)
        lab = t.alpha_splitter(cut_depth=cut)
        # the honest delta for this cut: off-centre cuts give components
        # of size up to ~n^delta for delta = log(max component)/log(n)
        sizes = lab.component_sizes(t.children)
        delta = float(
            np.clip(np.log(max(sizes.max(), 2)) / np.log(max(t.size, 4)), 0.2, 0.95)
        )
        sp = splitting_from_labels(lab.comp, t.children, delta)
        sp = normalize_splitting(sp, t.size)
        rng = np.random.default_rng(seed + 1)
        keys = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], m)
        ref = run_reference(stx, keys, 0)
        eng = MeshEngine.for_problem(max(t.size, m))
        qs = QuerySet.start(keys, 0, record_trace=True)
        alpha_multisearch(eng, stx, qs, sp)
        assert qs.paths() == ref.paths()


class TestRankProperty:
    @given(
        keys=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=80
        ),
        queries=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=40
        ),
        strict=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_rank_matches_searchsorted(self, keys, queries, strict):
        arr = np.sort(np.array(keys))
        t = tree_from_keys(2, arr)
        stx = ktree_rank_structure(t, strict=strict)
        q = np.array(queries)
        res = run_reference(stx, q, 0, state_width=1)
        want = np.searchsorted(arr, q, side="left" if strict else "right")
        assert (res.state[:, 0].astype(int) == want).all()


class TestBandProperty:
    @given(h=st.integers(1, 48), c=st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_bands_always_tile(self, h, c):
        levels = np.array([min(2**i, 2**40) for i in range(h + 1)], dtype=np.int64)
        deco = compute_bands(levels, 2.0, c=c)
        cursor = 0
        for b in deco.bands:
            assert b.lo_level == cursor
            assert b.hi_level >= b.lo_level
            cursor = b.hi_level + 1
        assert deco.bstar_lo == cursor
        total = sum(b.n_vertices for b in deco.bands) + deco.bstar_n_vertices
        assert total == int(levels.sum())

    @given(h=st.integers(1, 48), c=st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_b1_b2_always_partition_band(self, h, c):
        levels = np.array([min(2**i, 2**40) for i in range(h + 1)], dtype=np.int64)
        deco = compute_bands(levels, 2.0, c=c)
        for b in deco.bands:
            lo2, hi2 = b.b2_levels
            assert hi2 == b.hi_level
            b1 = b.b1_levels
            if b1 is None:
                assert lo2 == b.lo_level
            else:
                assert b1[0] == b.lo_level and b1[1] + 1 == lo2
