"""Tests for the bench harness support (workloads, tables)."""

import numpy as np
import pytest

from repro.bench.reporting import Table
from repro.bench.workloads import (
    random_intervals,
    random_lines,
    sphere_points,
    uniform_sites,
)


class TestWorkloads:
    def test_sphere_points_on_sphere(self):
        pts = sphere_points(100, seed=0, center=(1, 2, 3), radius=2.5)
        d = np.linalg.norm(pts - np.array([1.0, 2.0, 3.0]), axis=1)
        assert np.allclose(d, 2.5)

    def test_sphere_points_deterministic(self):
        assert (sphere_points(10, seed=1) == sphere_points(10, seed=1)).all()

    def test_uniform_sites_in_box(self):
        pts = uniform_sites(50, seed=2, box=10.0)
        assert pts.shape == (50, 2)
        assert (pts >= 0).all() and (pts <= 10).all()

    def test_random_lines_shapes(self):
        p0, d = random_lines(20, seed=3)
        assert p0.shape == (20, 3) and d.shape == (20, 3)
        assert (np.linalg.norm(d, axis=1) > 0).all()

    def test_random_intervals_valid(self):
        lefts, rights = random_intervals(100, seed=4)
        assert (lefts <= rights).all()
        assert (lefts >= 0).all()


class TestTable:
    def test_add_and_render(self):
        t = Table("demo", ["a", "b"])
        t.add(1, 2.5)
        t.add(10, 0.000123)
        text = t.render()
        assert "demo" in text
        assert "0.000123" in text
        assert text.count("\n") == 3  # title + header + 2 rows

    def test_wrong_arity_rejected(self):
        t = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_columns_aligned(self):
        t = Table("demo", ["col", "x"])
        t.add("aaaa", 1)
        t.add("b", 22222)
        lines = t.render().splitlines()
        assert len(lines[1]) == len(lines[2]) == len(lines[3])

    def test_empty_table_renders(self):
        t = Table("empty", ["only"])
        assert "only" in t.render()

    def test_float_formatting(self):
        t = Table("demo", ["v"])
        t.add(123456.789)
        assert "1.23e+05" in t.render()
