"""Property-based tests for the geometry substrates."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st
from scipy.spatial import ConvexHull

from repro.geometry.hull3d import convex_hull_3d
from repro.geometry.primitives import orient2d, point_in_triangle, triangles_overlap
from repro.geometry.triangulate import ear_clip

finite = st.floats(-100, 100, allow_nan=False)
point2 = st.tuples(finite, finite)


class TestPredicates:
    @given(point2, point2, point2)
    @settings(max_examples=100, deadline=None)
    def test_orient_antisymmetric(self, a, b, c):
        a, b, c = map(np.array, (a, b, c))
        assert orient2d(a, b, c) == -orient2d(a, c, b)

    @given(point2, point2, point2)
    @settings(max_examples=100, deadline=None)
    def test_orient_cyclic_invariance(self, a, b, c):
        a, b, c = map(np.array, (a, b, c))
        v = orient2d(a, b, c)
        assert orient2d(b, c, a) == pytest.approx(v, abs=1e-6)

    @given(point2, point2, point2, st.floats(0.01, 0.98), st.floats(0.01, 0.98))
    @settings(max_examples=100, deadline=None)
    def test_convex_combination_is_inside(self, a, b, c, u, v):
        a, b, c = map(np.array, (a, b, c))
        assume(abs(orient2d(a, b, c)) > 1e-3)
        w1, w2 = u, (1 - u) * v
        w3 = 1 - w1 - w2
        assume(w3 > 0.01)
        p = w1 * a + w2 * b + w3 * c
        assert point_in_triangle(p, a, b, c, eps=1e-9)

    @given(point2, point2, point2)
    @settings(max_examples=50, deadline=None)
    def test_triangle_overlaps_itself(self, a, b, c):
        tri = np.array([a, b, c])
        assume(abs(orient2d(tri[0], tri[1], tri[2])) > 1e-3)
        assert triangles_overlap(tri, tri)


class TestEarClipProperty:
    @given(
        st.integers(4, 10),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_star_shaped_polygons(self, k, seed):
        rng = np.random.default_rng(seed)
        theta = np.sort(rng.uniform(0, 2 * np.pi, k))
        gaps = np.diff(np.concatenate([theta, [theta[0] + 2 * np.pi]]))
        assume(np.min(gaps) > 0.15)
        # star-shapedness (hence simplicity) needs the origin inside the
        # polygon: no angular gap may reach pi
        assume(np.max(gaps) < np.pi - 0.1)
        radii = rng.uniform(0.5, 2.0, k)
        poly = np.stack([radii * np.cos(theta), radii * np.sin(theta)], axis=1)
        tris = ear_clip(poly)
        assert tris.shape == (k - 2, 3)
        # triangle areas sum to the polygon area and all are CCW
        areas = np.array(
            [orient2d(poly[a], poly[b], poly[c]) / 2 for a, b, c in tris]
        )
        assert (areas > 0).all()
        x, y = poly[:, 0], poly[:, 1]
        want = 0.5 * float(np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y))
        assert areas.sum() == pytest.approx(want, rel=1e-9)


class TestHullProperty:
    @given(st.integers(6, 60), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_matches_scipy_on_random_clouds(self, n, seed):
        pts = np.random.default_rng(seed).normal(size=(n, 3))
        ours = convex_hull_3d(pts, seed=seed)
        ref = ConvexHull(pts)
        assert set(ours.vertices) == set(ref.vertices)
        assert ours.volume() == pytest.approx(ref.volume, rel=1e-9)

    @given(st.integers(6, 40), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_hull_invariants(self, n, seed):
        pts = np.random.default_rng(seed).normal(size=(n, 3))
        h = convex_hull_3d(pts, seed=0)
        assert h.contains(pts).all()
        V, E, F = h.vertices.size, h.edges().shape[0], h.faces.shape[0]
        assert V - E + F == 2
