"""Property-based tests for interval structures and the mesh interval app."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.apps.interval_search import (
    count_intersections_mesh,
    report_intersections_mesh,
    setup_interval_search,
)
from repro.core.model import run_reference
from repro.intervals.interval_tree import IntervalTree, brute_force_intersections
from repro.intervals.structure import build_interval_structure


@st.composite
def interval_sets(draw, max_n=60):
    n = draw(st.integers(1, max_n))
    lefts = draw(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=n, max_size=n)
    )
    lens = draw(
        st.lists(st.floats(0, 30, allow_nan=False), min_size=n, max_size=n)
    )
    lefts = np.array(lefts)
    rights = lefts + np.array(lens)
    return lefts, rights


class TestIntervalTreeProperty:
    @given(interval_sets(), st.floats(-10, 110, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_stab_matches_brute(self, ivs, q):
        lefts, rights = ivs
        tree = IntervalTree(lefts, rights)
        got = set(tree.stab(q).tolist())
        want = set(np.flatnonzero((lefts <= q) & (rights >= q)).tolist())
        assert got == want

    @given(
        interval_sets(),
        st.floats(-10, 110, allow_nan=False),
        st.floats(0, 40, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_query_matches_brute(self, ivs, a, width):
        lefts, rights = ivs
        tree = IntervalTree(lefts, rights)
        b = a + width
        got = set(tree.query_interval(a, b).tolist())
        want = set(brute_force_intersections(lefts, rights, a, b).tolist())
        assert got == want
        assert tree.count_intersections(a, b) == len(want)


class TestFlattenedStructureProperty:
    @given(interval_sets(max_n=40), st.floats(0, 100, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_stab_walk_matches_tree(self, ivs, q):
        lefts, rights = ivs
        tree = IntervalTree(lefts, rights)
        istruct = build_interval_structure(tree)
        res = run_reference(
            istruct.structure, np.array([q]), istruct.root_vertex, state_width=1
        )
        ids = istruct.vertex_interval[np.array(res.paths()[0])]
        got = set(ids[ids >= 0].tolist())
        assert got == set(tree.stab(q).tolist())


class TestMeshAppProperty:
    @given(interval_sets(max_n=40), st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_count_and_report_match_brute(self, ivs, seed):
        lefts, rights = ivs
        # distinct finite keys keep the range walk's strictness irrelevant
        assume(np.unique(lefts).size == lefts.size)
        setup = setup_interval_search(lefts, rights)
        rng = np.random.default_rng(seed)
        a = rng.uniform(0, 100, 8)
        b = a + rng.uniform(0, 20, 8)
        counts, _ = count_intersections_mesh(setup, a, b)
        reports, _ = report_intersections_mesh(setup, a, b)
        for i in range(8):
            want = set(brute_force_intersections(lefts, rights, a[i], b[i]).tolist())
            assert counts[i] == len(want)
            assert set(reports[i].tolist()) == want
