"""Unit tests for the parallel benchmark runner (repro.bench.runner)."""

import numpy as np
import pytest

from repro.bench import runner
from repro.bench.runner import (
    BENCH_DIR,
    REGISTRY,
    _extract_steps,
    _peak_rss_kib,
    _pts,
    compare,
    main,
    provenance,
    run_point,
)


class TestRegistry:
    def test_every_bench_module_is_registered(self):
        # every benchmarks/bench_*.py is driven by the runner, except the
        # figure-generation script (plots, not measurements) and the
        # supervision bench (its qps-vs-kill-rate points don't fit the
        # runner's per-point record schema; it ships its own CLI + gates)
        on_disk = {p.stem for p in BENCH_DIR.glob("bench_*.py")}
        registered = {spec.module for spec in REGISTRY.values()}
        assert on_disk - registered == {"bench_figures", "bench_e14_supervision"}
        assert registered <= on_disk

    def test_points_ascend(self):
        for name, spec in REGISTRY.items():
            assert spec.points, name
            keys = list(spec.points[0])
            seq = [[p[k] for k in keys] for p in spec.points]
            assert seq == sorted(seq), name

    def test_pts_cartesian(self):
        pts = _pts(a=[1, 2], b=["x", "y"])
        assert len(pts) == 4
        assert pts[0] == {"a": 1, "b": "x"}
        assert pts[-1] == {"a": 2, "b": "y"}
        assert _pts({"fixed": 3}, a=[1])[0] == {"fixed": 3, "a": 1}

    def test_pts_order_pinned(self):
        # documented contract: lexicographic by sweep keys in declaration
        # order (first key slowest, last fastest), values ascending even
        # when listed descending — points[0] is the smallest point
        pts = _pts(a=[2, 1], b=["y", "x"])
        assert pts == (
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        )


class TestPeakRssKib:
    def test_linux_passthrough(self):
        assert _peak_rss_kib(123456, platform="linux") == 123456

    def test_darwin_bytes_to_kib(self):
        assert _peak_rss_kib(123456 * 1024, platform="darwin") == 123456
        assert _peak_rss_kib(1023, platform="darwin") == 0  # sub-KiB floors

    def test_default_platform_is_current(self):
        import sys

        expected = 2048 // 1024 if sys.platform == "darwin" else 2048
        assert _peak_rss_kib(2048) == expected


class _WithSteps:
    mesh_steps = 42.0


class TestExtractSteps:
    def test_shapes(self):
        assert _extract_steps(17) == 17.0
        assert _extract_steps(3.5) == 3.5
        assert _extract_steps(np.int64(9)) == 9.0
        assert _extract_steps(_WithSteps()) == 42.0
        assert _extract_steps((_WithSteps(), 1024)) == 42.0
        assert _extract_steps((12.0, 4096)) == 12.0
        assert _extract_steps({"sort": 2.0, "route": 3.0}) == 5.0

    def test_non_steps(self):
        assert _extract_steps(True) is None  # bool is not a step count
        assert _extract_steps("nope") is None
        assert _extract_steps((None, "x")) is None
        assert _extract_steps({"sort": 2.0, "note": "hi"}) is None


def _doc(wall_by_params):
    return {
        "bench": "demo",
        "points": [
            {"params": dict(p), "fast": {"wall_s_min": w}}
            for p, w in wall_by_params
        ],
    }


class TestCompare:
    BASE = _doc([({"n": 1}, 1.0), ({"n": 2}, 2.0)])

    def test_within_tolerance_passes(self):
        doc = _doc([({"n": 1}, 1.05), ({"n": 2}, 1.9)])
        assert compare(doc, self.BASE, tolerance=0.10) == []

    def test_regression_fails(self):
        doc = _doc([({"n": 1}, 1.5), ({"n": 2}, 2.0)])
        failures = compare(doc, self.BASE, tolerance=0.10)
        assert len(failures) == 1
        assert "n': 1" in failures[0] or "'n': 1" in failures[0]

    def test_unknown_points_skipped(self):
        doc = _doc([({"n": 99}, 100.0)])
        assert compare(doc, self.BASE, tolerance=0.10) == []


class TestRunPoint:
    def test_record_schema_in_process(self):
        # the smallest E10 point is cheap enough to measure inline
        record = run_point("e10_vm", {"side": 8}, repeats=1, warmup=0)
        assert record["params"] == {"side": 8}
        for mode in ("fast", "slow"):
            assert record[mode]["wall_s_min"] > 0
            assert record[mode]["repeats"] == 1
            assert record[mode]["mesh_steps"] > 0
        assert record["mesh_steps_equal"] is True
        assert record["speedup"] > 0
        assert record["peak_rss_kb"] > 0

    def test_trace_record(self):
        record = run_point(
            "e1_hierdag",
            {"height": 8, "method": "hierdag"},
            repeats=1,
            warmup=0,
            trace=True,
        )
        events = record["trace"]["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        names = {e["name"] for e in events}
        assert "hierdag" in names and "hierdag:bstar" in names
        # summed span charges match the bench's reported mesh steps: the
        # traced pass re-runs the same deterministic schedule
        assert record["trace_steps"] == record["fast"]["mesh_steps"]
        assert "hierdag" in record["trace_tree"]
        # spanTrees ride in the sidecar for report --diff
        assert record["trace"]["spanTrees"]
        # collapsed-stack export: values sum to the traced steps
        from repro.mesh.trace import parse_collapsed

        parsed = parse_collapsed(record["trace_collapsed"])
        assert sum(parsed.values()) == record["trace_steps"]
        assert any("hierdag:bstar" in ";".join(p) for p in parsed)

    def test_profile_record(self):
        # e10 runs on the raw MeshVM (no StepClock), so profile an
        # engine-based bench: E1's smallest point
        record = run_point(
            "e1_hierdag",
            {"height": 8, "method": "hierdag"},
            repeats=1,
            warmup=0,
            profile=True,
        )
        assert record["profile"]["by_label"]
        assert sum(record["profile"]["by_label"].values()) > 0
        # memo counters from the profiled pass ride in the profile dict
        memo = record["profile"].get("memo", {})
        assert set(memo) <= {"hits", "misses"}

    def test_clears_host_caches_between_points(self):
        # regression: pooled buffers and memo entries from one sweep point
        # must not bleed into the next point's RSS/counters when points
        # share a process
        from repro.mesh.engine import MeshEngine
        from repro.mesh.records import drain_memo_counters

        engine = MeshEngine(8, fast_path=True)
        keys = np.arange(64, dtype=np.int64)[::-1].copy()
        engine.root.argsort(keys)
        engine.root.argsort(keys)
        engine.pool.full((64,), np.int64)
        assert engine.argsort_memo._slots  # memo holds a stashed order
        assert engine.pool._buffers  # pool holds a cached buffer
        assert drain_memo_counters()["hits"] >= 1
        engine.root.argsort(keys)  # repopulate the counters
        run_point("selftest", {"mode": "ok"}, repeats=1, warmup=0)
        assert not engine.argsort_memo._slots
        assert not engine.pool._buffers
        # counters were drained on entry, so the point owns what follows
        assert drain_memo_counters() == {"hits": 0, "misses": 0}


class TestProvenance:
    def test_schema(self):
        prov = provenance()
        assert prov["backend"]  # resolved default backend name
        assert isinstance(prov["backend_native"], bool)
        versions = prov["versions"]
        assert versions["python"] and versions["numpy"]
        assert "numba" in versions and "cffi" in versions  # None when absent
        assert prov["platform"]

    def test_stamped_into_bench_doc(self):
        doc = runner.run_bench("selftest", jobs=1, repeats=1, warmup=0, smoke=True)
        assert doc["provenance"] == provenance()

    def test_rendered_by_report(self):
        from repro.bench.report import render_doc

        doc = {
            "bench": "demo",
            "provenance": provenance(),
            "points": [],
        }
        text = render_doc(doc)
        assert "environment: backend=" in text
        assert "numpy" in text


class TestMain:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "e1_hierdag" in out and "e2_constrained" in out

    def test_unknown_bench_errors(self):
        with pytest.raises(SystemExit):
            main(["not_a_bench"])

    def test_requires_selection(self):
        with pytest.raises(SystemExit):
            main([])


def _probe_callable(monkeypatch, seen, result=1.0):
    """Swap the bench entry point for a closure that records the env mode."""
    import os

    spec = runner.BenchSpec("probe", "probe", ({},))

    def fake(bench):
        def fn(**kwargs):
            seen.append(os.environ.get("REPRO_FAST_PATH"))
            return result

        return spec, fn

    monkeypatch.setattr(runner, "_bench_callable", fake)


class TestRunPointEnvHygiene:
    # regression: run_point used to pop REPRO_FAST_PATH/PROFILE/TRACE on
    # exit, clobbering whatever the caller had exported — and the optional
    # profiled/traced passes ran *after* the pop, under the process-default
    # mode instead of the fast path whose numbers headline the record

    VARS = ("REPRO_FAST_PATH", "REPRO_PROFILE", "REPRO_TRACE")

    def test_restores_caller_values(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_FAST_PATH", "0")
        monkeypatch.setenv("REPRO_PROFILE", "1")
        monkeypatch.setenv("REPRO_TRACE", "1")
        run_point("selftest", {"mode": "ok"}, repeats=1, warmup=0)
        assert os.environ["REPRO_FAST_PATH"] == "0"
        assert os.environ["REPRO_PROFILE"] == "1"
        assert os.environ["REPRO_TRACE"] == "1"

    def test_unset_vars_stay_unset(self, monkeypatch):
        import os

        for name in self.VARS:
            monkeypatch.delenv(name, raising=False)
        run_point("selftest", {"mode": "ok"}, repeats=1, warmup=0)
        for name in self.VARS:
            assert name not in os.environ

    def test_extra_passes_pinned_to_fast_mode(self, monkeypatch):
        import os

        seen: list = []
        _probe_callable(monkeypatch, seen)
        monkeypatch.setenv("REPRO_FAST_PATH", "0")
        record = run_point("probe", {}, repeats=1, warmup=0, profile=True, trace=True)
        # timed passes interleave fast/slow; both extra passes run fast
        assert seen == ["1", "0", "1", "1"]
        assert os.environ["REPRO_FAST_PATH"] == "0"
        assert record["speedup"] is not None

    def test_restores_env_when_entry_raises(self, monkeypatch):
        import os

        spec = runner.BenchSpec("probe", "probe", ({},))

        def fake(bench):
            def fn(**kwargs):
                raise RuntimeError("boom")

            return spec, fn

        monkeypatch.setattr(runner, "_bench_callable", fake)
        monkeypatch.setenv("REPRO_FAST_PATH", "0")
        with pytest.raises(RuntimeError):
            run_point("probe", {}, repeats=1, warmup=0)
        assert os.environ["REPRO_FAST_PATH"] == "0"


class TestZeroWallSpeedup:
    # regression: a fast wall of exactly 0.0 (timer granularity on a
    # trivial point) raised ZeroDivisionError and lost the whole record

    def test_null_speedup_with_warning(self, monkeypatch):
        seen: list = []
        _probe_callable(monkeypatch, seen)
        monkeypatch.setattr(runner.time, "perf_counter", lambda: 0.0)
        record = run_point("probe", {}, repeats=1, warmup=0)
        assert record["speedup"] is None
        assert any("speedup: null" in w for w in record["warnings"])

    def test_renderers_tolerate_null_speedup(self, monkeypatch):
        from repro.bench.report import render_doc

        seen: list = []
        _probe_callable(monkeypatch, seen)
        monkeypatch.setattr(runner.time, "perf_counter", lambda: 0.0)
        record = run_point("probe", {}, repeats=1, warmup=0)
        doc = {
            "bench": "probe",
            "wall_s_total": 0.0,
            "points": [record],
            "repeats": 1,
        }
        assert "speedup=-" in runner._render_bench(doc)
        assert "speedup=-" in render_doc(doc)

    def test_compare_tolerates_null_speedup(self):
        # compare() gates on wall time only; a null-speedup point with a
        # healthy wall must neither crash nor fail the gate
        doc = _doc([({"n": 1}, 1.0)])
        doc["points"][0]["speedup"] = None
        assert compare(doc, _doc([({"n": 1}, 1.0)]), tolerance=0.10) == []


class TestParamsKey:
    # regression: json.dumps keyed 4096 and 4096.0 differently, so a
    # checkpoint whose params round-tripped through JSON as floats missed
    # on --resume and silently re-ran every point

    def test_whole_float_equals_int(self):
        assert runner._params_key({"n": 4096}) == runner._params_key({"n": 4096.0})
        assert runner._params_key({"x": 2, "y": 1.0}) == runner._params_key(
            {"y": 1, "x": 2.0}
        )

    def test_distinct_values_stay_distinct(self):
        assert runner._params_key({"x": 0.5}) != runner._params_key({"x": 1})
        assert runner._params_key({"b": True}) != runner._params_key({"b": 1})
        assert runner._params_key({"s": "4096"}) != runner._params_key({"n": 4096})

    def test_checkpoint_resume_across_numeric_spelling(self, tmp_path):
        path = tmp_path / "ck.partial.json"
        config = {"repeats": 1}
        record = {
            "params": {"n": 4096.0},
            "fast": {"wall_s_min": 1.0},
            "slow": {"wall_s_min": 2.0},
        }
        runner._write_checkpoint(path, config, {0: record})
        done = runner._load_checkpoint(path, config)
        assert runner._params_key({"n": 4096}) in done

    def test_compare_matches_across_numeric_spelling(self):
        doc = _doc([({"n": 4096}, 10.0)])
        base = _doc([({"n": 4096.0}, 1.0)])
        failures = compare(doc, base, tolerance=0.10)
        assert len(failures) == 1  # the 10x regression is detected, not skipped
