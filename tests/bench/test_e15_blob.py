"""The committed E15 blob is live: steps reproduce and show the crossover.

``BENCH_e15_sharded.json`` records modelled steps only — a pure cost
model with no wall-clock component — so this gate can re-run every
sweep point (milliseconds each) and demand *exact* agreement, then
assert the acceptance criterion itself: off-chip exchange cost
overtakes the intra-chip parallelism win as ``k_chip`` grows.
"""

import json
import sys

import pytest

from repro.bench.runner import BENCH_DIR, REGISTRY, REPO_ROOT

BLOB = REPO_ROOT / "BENCH_e15_sharded.json"


@pytest.fixture(scope="module")
def points():
    doc = json.loads(BLOB.read_text())
    assert doc["bench"] == "e15_sharded"
    for p in doc["points"]:
        assert "error" not in p, p
        assert p["mesh_steps_equal"] is True
    return doc["points"]


@pytest.fixture(scope="module")
def run_once():
    sys.path.insert(0, str(BENCH_DIR))
    try:
        from bench_e15_sharded import run_once
    finally:
        sys.path.remove(str(BENCH_DIR))
    return run_once


def _by_params(points):
    return {
        (p["params"]["bandwidth"], p["params"]["k_chip"]): p["fast"]["mesh_steps"]
        for p in points
    }


def test_blob_covers_the_registered_sweep(points):
    recorded = [p["params"] for p in points]
    assert recorded == [dict(pt) for pt in REGISTRY["e15_sharded"].points]


def test_steps_reproduce_exactly(points, run_once):
    # deterministic cost model: any drift is a real accounting change
    # and must come with a regenerated blob
    for p in points:
        assert run_once(**p["params"]) == p["fast"]["mesh_steps"], p["params"]


def test_crossover_recorded(points):
    steps = _by_params(points)
    for bandwidth in (1.0, 8.0):
        anchor = steps[(bandwidth, 1)]
        # sharding pays off at first...
        assert steps[(bandwidth, 2)] < anchor
        # ...and the curve turns once exchanges dominate
        assert steps[(bandwidth, 8)] > min(
            steps[(bandwidth, k)] for k in (2, 4)
        )
    # narrow links: by k_chip=8 sharding costs MORE than not sharding
    assert steps[(1.0, 8)] > steps[(1.0, 1)]
    # 8x wider links move the minimum out to k_chip=4
    assert steps[(8.0, 4)] == min(steps[(8.0, k)] for k in (1, 2, 4, 8))
