"""Tests for the bench report CLI (repro.bench.report)."""

import json

import pytest

from repro.bench import report
from repro.bench.runner import compare


def _doc(bench, points, profile=None):
    doc = {
        "schema": 1,
        "bench": bench,
        "created": "2026-01-01T00:00:00Z",
        "repeats": 3,
        "points": [
            {
                "params": dict(params),
                "fast": {"wall_s_min": fast, "repeats": 3, "mesh_steps": steps},
                "slow": {"wall_s_min": fast * 2, "repeats": 3, "mesh_steps": steps},
                "mesh_steps_equal": True,
                "speedup": 2.0,
                "peak_rss_kb": 4096,
            }
            for params, fast, steps in points
        ],
    }
    if profile is not None:
        doc["profile"] = profile
    return doc


BASE = _doc(
    "demo",
    [({"n": 1}, 0.010, 100.0), ({"n": 2}, 0.020, 200.0)],
    profile={"by_label": {"sort": 60.0, "route": 40.0}, "calls": {"sort": 2, "route": 1}},
)
SAME = _doc(
    "demo",
    [({"n": 1}, 0.0101, 100.0), ({"n": 2}, 0.0199, 200.0)],
    profile={"by_label": {"sort": 60.0, "route": 40.0}, "calls": {"sort": 2, "route": 1}},
)
REGRESSED = _doc(
    "demo",
    [({"n": 1}, 0.050, 120.0), ({"n": 2}, 0.020, 200.0)],
)


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


class TestRender:
    def test_render_single_doc(self, capsys, tmp_path):
        assert report.main([_write(tmp_path, "a.json", BASE)]) == 0
        out = capsys.readouterr().out
        assert "demo" in out
        assert "n=1" in out and "n=2" in out
        assert "10.00ms" in out
        assert "sort" in out  # merged profile rendered

    def test_render_doc_without_profile(self, capsys, tmp_path):
        assert report.main([_write(tmp_path, "a.json", REGRESSED)]) == 0
        assert "demo" in capsys.readouterr().out


class TestDiff:
    def test_no_regression_exits_zero(self, capsys, tmp_path):
        old = _write(tmp_path, "old.json", BASE)
        new = _write(tmp_path, "new.json", SAME)
        assert report.main(["--diff", old, new]) == 0
        out = capsys.readouterr().out
        assert "no fast-path wall regression" in out

    def test_regression_exits_nonzero(self, capsys, tmp_path):
        old = _write(tmp_path, "old.json", BASE)
        new = _write(tmp_path, "new.json", REGRESSED)
        assert report.main(["--diff", old, new]) == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out

    def test_exit_matches_runner_compare(self, tmp_path):
        # acceptance: --diff exits non-zero iff runner --compare would fail
        for new_doc in (SAME, REGRESSED):
            old = _write(tmp_path, "old.json", BASE)
            new = _write(tmp_path, "new.json", new_doc)
            rc = report.main(["--diff", old, new])
            runner_failures = compare(new_doc, BASE)
            assert (rc != 0) == bool(runner_failures)

    def test_tolerance_forwarded(self, tmp_path):
        old = _write(tmp_path, "old.json", BASE)
        new = _write(tmp_path, "new.json", REGRESSED)
        # 5x regression passes under an absurdly loose tolerance
        assert report.main(["--diff", old, new, "--tolerance", "10.0"]) == 0

    def test_per_label_deltas_rendered(self, capsys, tmp_path):
        new_doc = _doc(
            "demo",
            [({"n": 1}, 0.010, 100.0)],
            profile={"by_label": {"sort": 90.0, "route": 40.0}, "calls": {"sort": 3, "route": 1}},
        )
        old = _write(tmp_path, "old.json", BASE)
        new = _write(tmp_path, "new.json", new_doc)
        report.main(["--diff", old, new])
        out = capsys.readouterr().out
        assert "per-label step deltas" in out
        assert "sort" in out and "+50.0%" in out
        assert "dropped" in out  # n=2 exists only in the baseline

    def test_diff_needs_two_files(self, tmp_path):
        with pytest.raises(SystemExit):
            report.main(["--diff", _write(tmp_path, "a.json", BASE)])

    def test_missing_file_exits_two(self, capsys, tmp_path):
        old = _write(tmp_path, "old.json", BASE)
        assert report.main(["--diff", old, str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_json_exits_two(self, capsys, tmp_path):
        old = _write(tmp_path, "old.json", BASE)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert report.main(["--diff", old, str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_malformed_bench_doc_exits_two(self, capsys, tmp_path):
        old = _write(tmp_path, "old.json", BASE)
        hollow = _write(tmp_path, "hollow.json", {"bench": "demo"})
        assert report.main(["--diff", old, hollow]) == 2
        assert "malformed bench document" in capsys.readouterr().err

    def test_committed_bench_jsons_diff_clean_against_themselves(self):
        # the two BENCH blobs committed at the repo root are valid report
        # inputs and self-diff to exit 0 (acceptance criterion artifact)
        from repro.bench.runner import REPO_ROOT

        for name in (
            "BENCH_e1_hierdag.json",
            "BENCH_e2_constrained.json",
            "BENCH_e11_construct.json",
            "BENCH_e15_sharded.json",
        ):
            path = REPO_ROOT / name
            assert path.exists()
            assert report.main(["--diff", str(path), str(path)]) == 0

    def test_committed_e11_blob_shows_sqrt_construction(self):
        # the E11 acceptance criterion: per pipeline, modelled construction
        # steps normalised by sqrt(n) stay in a bounded band across a 64x
        # size sweep — construction is O(sqrt(n)) in the cost model
        import math

        from repro.bench.runner import REPO_ROOT

        doc = json.loads((REPO_ROOT / "BENCH_e11_construct.json").read_text())
        ratios: dict[str, list[float]] = {}
        spans: dict[str, list[int]] = {}
        for p in doc["points"]:
            assert "error" not in p
            assert p["mesh_steps_equal"] is True
            n = p["params"]["n"]
            steps = p["fast"]["mesh_steps"]
            assert steps > 0
            ratios.setdefault(p["params"]["pipeline"], []).append(
                steps / math.sqrt(n)
            )
            spans.setdefault(p["params"]["pipeline"], []).append(n)
        assert set(ratios) == {"kirkpatrick", "dk3d"}
        for pipeline, rs in ratios.items():
            ns = spans[pipeline]
            assert max(ns) / min(ns) >= 64, f"{pipeline} sweep too narrow"
            assert max(rs) / min(rs) < 3.0, (
                f"{pipeline}: steps/sqrt(n) band {min(rs):.1f}..{max(rs):.1f} "
                "too wide for an O(sqrt(n)) claim"
            )


def _trace_doc(bstar_steps=100.0, extra_span=False):
    """A TRACE_* sidecar as the runner would write it, via real tracers."""
    from repro.mesh.clock import StepClock
    from repro.mesh.trace import Tracer, chrome_doc

    clock = StepClock()
    tracer = Tracer(clock=clock)
    with tracer.span("search"):
        clock.charge(40.0, "setup")
        with tracer.span("search:bstar"):
            clock.charge(bstar_steps, "bstar")
        if extra_span:
            with tracer.span("search:extra"):
                clock.charge(5.0, "extra")
    return chrome_doc([tracer])


class TestTraceDiff:
    def test_render_single_trace_doc(self, capsys, tmp_path):
        path = _write(tmp_path, "TRACE_a.json", _trace_doc())
        assert report.main([path]) == 0
        out = capsys.readouterr().out
        assert "search:bstar" in out and "net steps" in out

    def test_self_diff_exits_zero(self, capsys, tmp_path):
        old = _write(tmp_path, "TRACE_old.json", _trace_doc())
        new = _write(tmp_path, "TRACE_new.json", _trace_doc())
        assert report.main(["--diff", old, new]) == 0
        assert "no per-span step regression" in capsys.readouterr().out

    def test_identifies_regressed_phase(self, capsys, tmp_path):
        # acceptance: an injected per-phase regression is named in the diff
        old = _write(tmp_path, "TRACE_old.json", _trace_doc(bstar_steps=100.0))
        new = _write(tmp_path, "TRACE_new.json", _trace_doc(bstar_steps=150.0))
        assert report.main(["--diff", old, new]) == 1
        out = capsys.readouterr().out
        assert "REGRESSIONS" in out
        assert "search:bstar" in out  # the regressed phase is identified
        assert "+50.0%" in out

    def test_added_and_removed_spans_reported(self, capsys, tmp_path):
        old = _write(tmp_path, "TRACE_old.json", _trace_doc(extra_span=True))
        new = _write(tmp_path, "TRACE_new.json", _trace_doc())
        assert report.main(["--diff", old, new]) == 0  # removal is not a regression
        out = capsys.readouterr().out
        assert "search:extra: removed" in out
        report.main(["--diff", new, old])
        assert "search:extra: added" in capsys.readouterr().out

    def test_tolerance_forwarded(self, tmp_path):
        old = _write(tmp_path, "TRACE_old.json", _trace_doc(bstar_steps=100.0))
        new = _write(tmp_path, "TRACE_new.json", _trace_doc(bstar_steps=150.0))
        assert report.main(["--diff", old, new, "--tolerance", "0.60"]) == 0

    def test_missing_sidecar_exits_two(self, capsys, tmp_path):
        old = _write(tmp_path, "TRACE_old.json", _trace_doc())
        assert report.main(["--diff", old, str(tmp_path / "TRACE_gone.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_sidecar_exits_two(self, capsys, tmp_path):
        old = _write(tmp_path, "TRACE_old.json", _trace_doc())
        bad = tmp_path / "TRACE_bad.json"
        bad.write_text("{]")
        assert report.main(["--diff", old, str(bad)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_trace_doc_without_span_trees_exits_two(self, capsys, tmp_path):
        old = _write(tmp_path, "TRACE_old.json", _trace_doc())
        # a pre-spanTrees sidecar: raw Chrome events only
        legacy = _write(tmp_path, "TRACE_legacy.json", {"traceEvents": []})
        assert report.main(["--diff", old, legacy]) == 2
        assert "no spanTrees" in capsys.readouterr().err

    def test_mixed_doc_kinds_exit_two(self, capsys, tmp_path):
        bench = _write(tmp_path, "bench.json", BASE)
        trace = _write(tmp_path, "TRACE_a.json", _trace_doc())
        assert report.main(["--diff", bench, trace]) == 2
        assert "cannot diff" in capsys.readouterr().err
