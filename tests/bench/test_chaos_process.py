"""Process-fault chaos suite and the E14 supervision bench.

The live matrix (workers actually killed/hung/slowed) runs in CI's
supervision-chaos job; these tests pin the *logic* around it — gate
semantics, blind-spot extraction, the committed artifacts — plus one
live cell so the suite can't silently rot between CI runs.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.bench import chaos
from repro.bench.runner import BENCH_DIR

REPO = pathlib.Path(__file__).resolve().parents[2]


def _load_e14():
    spec = importlib.util.spec_from_file_location(
        "bench_e14_supervision", BENCH_DIR / "bench_e14_supervision.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _cell(outcome, kind="worker_crash", seed=1, **over):
    cell = {
        "scenario": "serve_pool",
        "kind": kind,
        "seed": seed,
        "mode": "supervised",
        "outcome": outcome,
        "wrong_answers": 0,
        "typed_errors": 0,
        "untyped_errors": 0,
        "cache_polluted": 0,
        "evidence": 1,
        "pool_stats": {},
    }
    cell.update(over)
    return cell


def _report(*cells):
    return {"schema": chaos.SCHEMA_VERSION, "suite": "process", "results": list(cells)}


class TestProcessGate:
    def test_recovered_detected_and_no_opportunity_pass(self):
        report = _report(
            _cell("recovered"),
            _cell("detected", kind="worker_corrupt_reply"),
            _cell("no_opportunity", kind="worker_slow"),
        )
        assert chaos.gate_process(report, None) == []
        assert chaos.process_blind_spots(report) == {}

    @pytest.mark.parametrize(
        "outcome", ["silent_corruption", "cache_pollution", "unresolved", "crash"]
    )
    def test_invariant_breaks_fail_without_baseline(self, outcome):
        report = _report(_cell(outcome, wrong_answers=1))
        failures = chaos.gate_process(report, None)
        assert len(failures) == 1
        assert outcome in failures[0]
        assert "supervised:serve_pool:worker_crash" in failures[0]

    def test_documented_blind_spot_passes(self):
        report = _report(_cell("unresolved", kind="worker_hang"))
        baseline = {
            "process_blind_spots": {
                "supervised:serve_pool:worker_hang": "unresolved (known)"
            }
        }
        assert chaos.gate_process(report, baseline) == []
        # but the engine-suite blind_spots map must not leak across gates
        assert chaos.gate_process(
            report, {"blind_spots": {"supervised:serve_pool:worker_hang": "x"}}
        ) != []

    def test_blind_spots_keyed_once_per_kind(self):
        report = _report(
            _cell("crash", seed=1), _cell("crash", seed=2), _cell("recovered", seed=3)
        )
        spots = chaos.process_blind_spots(report)
        assert list(spots) == ["supervised:serve_pool:worker_crash"]
        assert "seed=1" in spots["supervised:serve_pool:worker_crash"]

    def test_matrix_rejects_engine_kinds(self):
        with pytest.raises(ValueError, match="not process fault kinds"):
            chaos.run_process_matrix([1], kinds=["perturb_sort_key"])

    def test_every_process_kind_has_tuning_and_evidence(self):
        from repro.mesh.faults import PROCESS_FAULT_KINDS

        assert set(chaos._PROCESS_TUNING) == set(PROCESS_FAULT_KINDS)
        assert set(chaos._PROCESS_EVIDENCE) == set(PROCESS_FAULT_KINDS)
        from repro.serve.pool import POOL_STAT_KEYS

        for stats in chaos._PROCESS_EVIDENCE.values():
            assert set(stats) <= set(POOL_STAT_KEYS)


class TestProcessMatrixLive:
    def test_one_crash_cell_upholds_invariants(self, tmp_path):
        """A real 2-worker pool under mid-batch worker kills: every query
        resolves, nothing wrong, nothing untyped, and the crash shows up
        in the supervisor counters."""
        report = chaos.run_process_matrix([1], kinds=["worker_crash"], tmpdir=tmp_path)
        (cell,) = report["results"]
        assert cell["outcome"] in ("recovered", "detected", "no_opportunity")
        assert cell["wrong_answers"] == 0
        assert cell["untyped_errors"] == 0
        assert cell["cache_polluted"] == 0
        if cell["outcome"] != "no_opportunity":
            assert cell["evidence"] >= 1
        assert chaos.gate_process(report, None) == []


class TestFaultsBaselineArtifact:
    def test_committed_baseline_covers_process_suite(self):
        baseline = json.loads((REPO / "FAULTS_baseline.json").read_text())
        assert "process_blind_spots" in baseline
        # acceptance: seeds 1-9 x 4 worker kinds handled — no blind spots
        assert baseline["process_blind_spots"] == {}
        covers = baseline.get("process_covers", {})
        assert covers.get("scenarios") == ["serve_pool"]
        from repro.mesh.faults import PROCESS_FAULT_KINDS

        assert set(covers.get("kinds", [])) == set(PROCESS_FAULT_KINDS)


class TestE14Artifact:
    def test_committed_sweep_passes_its_own_gate(self):
        e14 = _load_e14()
        doc = json.loads((REPO / "BENCH_e14_supervision.json").read_text())
        assert doc["schema"] == e14.SCHEMA_VERSION
        assert doc["bench"] == "e14_supervision"
        assert e14.availability_failures(doc) == []
        # the headline acceptance number, asserted directly
        by_rate = {p["kill_rate"]: p for p in doc["points"]}
        assert by_rate[0.1]["qps"] >= 0.8 * by_rate[0.0]["qps"]
        for p in doc["points"]:
            assert p["answered"] == p["n_queries"]
            assert p["errors"] == 0

    def test_compare_flags_qps_regression(self):
        e14 = _load_e14()
        base = {"points": [{"kill_rate": 0.0, "qps": 100.0}]}
        good = {"points": [{"kill_rate": 0.0, "qps": 80.0}]}
        bad = {"points": [{"kill_rate": 0.0, "qps": 40.0}]}
        assert e14.compare(good, base) == []
        failures = e14.compare(bad, base)
        assert len(failures) == 1 and "kill_rate=0.0" in failures[0]
        # unknown rates in the new doc are not an error
        extra = {"points": [{"kill_rate": 0.5, "qps": 1.0}]}
        assert e14.compare(extra, base) == []

    def test_gate_requires_both_anchor_points(self):
        e14 = _load_e14()
        doc = {"points": [{"kill_rate": 0.0, "qps": 10.0, "errors": 0}]}
        assert e14.availability_failures(doc) != []
