"""The resilient runner: crash isolation, timeouts, checkpoints, resume.

Uses the registered ``selftest`` bench (benchmarks/bench_selftest.py):
its crash/hang/fail modes must live in a real module because spawned
workers re-import the bench by name — a monkeypatched stub would not
survive the spawn.  The sweep *points* are chosen in the parent, so the
tests override those freely.
"""

import json

import pytest

from repro.bench import report, runner
from repro.bench.runner import (
    BenchSpec,
    _load_checkpoint,
    _pts,
    compare,
    run_bench,
    run_point,
)


def _selftest_points(monkeypatch, modes):
    monkeypatch.setitem(
        runner.REGISTRY,
        "selftest",
        BenchSpec("bench_selftest", "run_once", _pts(mode=list(modes))),
    )


class TestCrashIsolation:
    def test_exception_recorded_not_fatal(self, monkeypatch):
        _selftest_points(monkeypatch, ["fail", "ok"])
        doc = run_bench("selftest", jobs=2, repeats=1, warmup=0, retries=0)
        by_mode = {p["params"]["mode"]: p for p in doc["points"]}
        assert "error" not in by_mode["ok"]
        err = by_mode["fail"]
        assert "RuntimeError: selftest: deliberate failure" in err["error"]
        assert "deliberate failure" in err["traceback"]
        assert err["error_kind"] == "exception"
        assert doc["n_errors"] == 1

    def test_crash_retried_then_recorded(self, monkeypatch):
        _selftest_points(monkeypatch, ["crash"])
        doc = run_bench(
            "selftest", jobs=1, repeats=1, warmup=0, retries=1, backoff=0.05
        )
        (point,) = doc["points"]
        assert "worker crashed" in point["error"]
        assert point["error_kind"] == "crash"
        assert point["attempts"] == 2  # first run + one retry
        assert any("retrying" in note for note in point["notes"])

    def test_timeout_kills_and_records(self, monkeypatch):
        _selftest_points(monkeypatch, ["hang", "ok"])
        doc = run_bench(
            "selftest", jobs=2, repeats=1, warmup=0, timeout=2.0, retries=0
        )
        by_mode = {p["params"]["mode"]: p for p in doc["points"]}
        assert "error" not in by_mode["ok"]
        assert "timed out after 2.0s" in by_mode["hang"]["error"]
        assert by_mode["hang"]["timed_out"] is True
        assert by_mode["hang"]["error_kind"] == "timeout"


class TestCheckpointResume:
    def test_partial_streams_and_resume_skips(self, monkeypatch, tmp_path):
        _selftest_points(monkeypatch, ["fail", "ok"])
        ckpt = tmp_path / "BENCH_selftest.partial.json"
        doc = run_bench(
            "selftest", jobs=1, repeats=1, warmup=0, retries=0, checkpoint=ckpt
        )
        assert ckpt.exists()
        saved = json.loads(ckpt.read_text())
        assert saved["partial"] is True
        assert len(saved["points"]) == 2
        # resume: the ok point is reused verbatim, the errored one reruns
        doc2 = run_bench(
            "selftest", jobs=1, repeats=1, warmup=0, retries=0,
            checkpoint=ckpt, resume=True,
        )
        assert doc2["resumed_points"] == 1
        ok1 = [p for p in doc["points"] if "error" not in p][0]
        ok2 = [p for p in doc2["points"] if "error" not in p][0]
        assert ok1 == ok2  # identical record, not a re-measure

    def test_resumed_error_point_gets_full_retry_budget(self, monkeypatch, tmp_path):
        """An errored checkpoint record reruns with the whole --retries budget."""
        _selftest_points(monkeypatch, ["crash"])
        ckpt = tmp_path / "BENCH_selftest.partial.json"
        doc = run_bench(
            "selftest", jobs=1, repeats=1, warmup=0, retries=0, backoff=0.05,
            checkpoint=ckpt,
        )
        assert doc["points"][0]["attempts"] == 1
        doc2 = run_bench(
            "selftest", jobs=1, repeats=1, warmup=0, retries=1, backoff=0.05,
            checkpoint=ckpt, resume=True,
        )
        assert "resumed_points" not in doc2  # nothing was skipped
        (point,) = doc2["points"]
        assert point["attempts"] == 2  # rerun + the retry the resume grants

    def test_resultless_record_not_resumed(self, monkeypatch, tmp_path):
        """A record with neither results nor an error reruns on resume.

        A checkpoint truncated mid-write (crash between the params line
        and the measurements) yields such records; skipping them would
        hand compare/report a point with no ``fast``/``slow`` dicts.
        """
        _selftest_points(monkeypatch, ["ok"])
        config = {"bench": "selftest", "repeats": 1, "warmup": 0,
                  "smoke": False, "profile": False, "trace": False}
        ckpt = tmp_path / "BENCH_selftest.partial.json"
        ckpt.write_text(json.dumps({
            "config": config, "partial": True,
            "points": [{"params": {"mode": "ok"}}],
        }))
        assert _load_checkpoint(ckpt, config) == {}
        doc = run_bench(
            "selftest", jobs=1, repeats=1, warmup=0, retries=0,
            checkpoint=ckpt, resume=True,
        )
        (point,) = doc["points"]
        assert isinstance(point["fast"], dict) and isinstance(point["slow"], dict)

    def test_config_mismatch_ignores_checkpoint(self, monkeypatch, tmp_path):
        _selftest_points(monkeypatch, ["ok"])
        ckpt = tmp_path / "BENCH_selftest.partial.json"
        run_bench("selftest", jobs=1, repeats=1, warmup=0, checkpoint=ckpt)
        config = {"bench": "selftest", "repeats": 2, "warmup": 0,
                  "smoke": False, "profile": False, "trace": False}
        assert _load_checkpoint(ckpt, config) == {}

    def test_unreadable_checkpoint_ignored(self, tmp_path):
        ckpt = tmp_path / "garbage.json"
        ckpt.write_text("{not json")
        assert _load_checkpoint(ckpt, {"bench": "x"}) == {}

    def test_main_deletes_checkpoint_on_success(self, monkeypatch, tmp_path):
        _selftest_points(monkeypatch, ["ok"])
        rc = runner.main(
            ["selftest", "--jobs", "1", "--repeats", "1", "--warmup", "0",
             "--out-dir", str(tmp_path)]
        )
        assert rc == 0
        assert (tmp_path / "BENCH_selftest.json").exists()
        assert not (tmp_path / "BENCH_selftest.partial.json").exists()

    def test_main_keeps_checkpoint_and_fails_on_error(self, monkeypatch, tmp_path):
        _selftest_points(monkeypatch, ["fail", "ok"])
        rc = runner.main(
            ["selftest", "--jobs", "1", "--repeats", "1", "--warmup", "0",
             "--retries", "0", "--out-dir", str(tmp_path)]
        )
        assert rc == 1  # errored point surfaces in the exit code
        assert (tmp_path / "BENCH_selftest.partial.json").exists()


class TestStepsNullWarning:
    def test_warning_distinguishes_missing_from_zero(self, monkeypatch):
        # register a spec whose entry returns something step-less while
        # claiming has_steps: the record must carry null + a warning
        monkeypatch.setitem(
            runner.REGISTRY,
            "selftest",
            BenchSpec("bench_selftest", "run_once", _pts(mode=["ok"]),
                      has_steps=True),
        )
        monkeypatch.setattr(
            runner, "_extract_steps", lambda result: None
        )
        record = run_point("selftest", {"mode": "ok"}, repeats=1, warmup=0)
        assert record["fast"]["mesh_steps"] is None
        assert any("steps: null" in w for w in record["warnings"])

    def test_no_warning_when_steps_found(self):
        record = run_point("selftest", {"mode": "ok"}, repeats=1, warmup=0)
        assert record["fast"]["mesh_steps"] == 1.0
        assert "warnings" not in record


class TestErrorAwareCompareAndReport:
    ERR_POINT = {
        "params": {"n": 1},
        "error": "timed out after 2.0s",
        "traceback": None,
        "attempts": 1,
    }
    OK_POINT = {
        "params": {"n": 2},
        "fast": {"wall_s_min": 1.0, "mesh_steps": 5.0, "repeats": 1},
        "slow": {"wall_s_min": 2.0, "mesh_steps": 5.0, "repeats": 1},
        "speedup": 2.0,
        "peak_rss_kb": 1024,
    }

    def test_compare_flags_errored_point(self):
        doc = {"bench": "demo", "points": [self.ERR_POINT, self.OK_POINT]}
        base = {"bench": "demo", "points": [self.OK_POINT]}
        failures = compare(doc, base)
        assert len(failures) == 1
        assert "timed out" in failures[0]

    def test_compare_flags_errored_baseline(self):
        doc = {"bench": "demo", "points": [dict(self.OK_POINT, params={"n": 1})]}
        base = {"bench": "demo", "points": [self.ERR_POINT]}
        failures = compare(doc, base)
        assert len(failures) == 1
        assert "baseline point errored" in failures[0]

    def test_render_bench_shows_error(self):
        doc = {
            "bench": "demo", "wall_s_total": 1.0,
            "points": [self.ERR_POINT, self.OK_POINT],
        }
        text = runner._render_bench(doc)
        # pre-error_kind record: the kind is inferred from the message
        assert "ERROR(timeout) after 1 attempt(s): timed out" in text
        assert "speedup=2.00x" in text

    def test_report_render_doc_shows_error(self):
        doc = {
            "bench": "demo", "repeats": 1,
            "points": [self.ERR_POINT, self.OK_POINT],
        }
        text = report.render_doc(doc)
        assert "ERROR(timeout) after 1 attempt(s)" in text
        assert "ERRORS: 1 of 2 points failed (timeout=1)" in text

    def test_report_render_diff_handles_errors(self):
        old = {"bench": "demo", "points": [self.OK_POINT, self.ERR_POINT]}
        new = {
            "bench": "demo",
            "points": [self.OK_POINT, dict(self.OK_POINT, params={"n": 1})],
        }
        text, failures = report.render_diff(old, new, tolerance=0.10)
        assert "baseline point errored" in text
        assert any("baseline point errored" in f for f in failures)

    def test_error_kind_classification(self):
        """Explicit error_kind wins; legacy records classify from their
        fields so old baselines still render the distinction."""
        assert runner.error_kind_of({"error_kind": "timeout"}) == "timeout"
        assert runner.error_kind_of({"error": "x", "timed_out": True}) == "timeout"
        assert runner.error_kind_of({"error": "timed out after 2.0s"}) == "timeout"
        assert (
            runner.error_kind_of({"error": "worker crashed (exit code -9)"})
            == "crash"
        )
        assert runner.error_kind_of({"error": "ValueError: nope"}) == "exception"

    def test_render_distinguishes_crash_from_timeout(self):
        crash_point = {
            "params": {"n": 3},
            "error": "worker crashed (exit code -11)",
            "error_kind": "crash",
            "traceback": None,
            "attempts": 2,
        }
        doc = {
            "bench": "demo", "wall_s_total": 1.0, "repeats": 1,
            "points": [self.ERR_POINT, crash_point],
        }
        text = runner._render_bench(doc)
        assert "ERROR(timeout)" in text and "ERROR(crash)" in text
        rep = report.render_doc(doc)
        assert "ERROR(crash) after 2 attempt(s)" in rep
        assert "(crash=1, timeout=1)" in rep
        base = {"bench": "demo", "points": []}
        failures = compare(doc, base)
        assert any(f.startswith("demo {'n': 3}: crash — ") for f in failures)
        assert any("timeout — " in f for f in failures)


class TestChaosDeterminism:
    @pytest.mark.parametrize("kind", ["perturb_sort_key", "corrupt_route_payload"])
    def test_same_seed_same_cell(self, kind):
        from repro.bench import chaos

        clean = chaos.SCENARIOS["primitives"](False, None)
        a = chaos.run_cell("primitives", kind, seed=3, paranoid=True, clean=clean)
        b = chaos.run_cell("primitives", kind, seed=3, paranoid=True, clean=clean)
        assert a == b
        assert a["outcome"] == "detected:paranoid"
        assert a["injected"]

    def test_gate_respects_baseline(self):
        from repro.bench.chaos import gate

        report_doc = {
            "results": [
                {"mode": "paranoid", "scenario": "s", "kind": "k",
                 "seed": 1, "outcome": "silent_corruption",
                 "injected": [{"kind": "k"}]},
            ]
        }
        assert gate(report_doc, None)  # undocumented -> failure
        baseline = {"blind_spots": {"paranoid:s:k": "known"}}
        assert gate(report_doc, baseline) == []
