"""Property-based fast-path and backend equivalence suite.

The engine's ``fast_path`` flag may change *how* the host executes the
simulation (fused blocks, memoized argsorts, pooled buffers, bincount
combining) but never *what* it computes or charges.  Every test here runs
the same workload under ``fast_path=True`` and ``fast_path=False`` and
asserts byte-identical outputs and identical step-clock charges — for each
counted primitive, for the fused ``*_records`` variants against their
per-field originals, and end-to-end for the E1/E2 algorithms.

The same discipline gates the kernel backends: every test is
parameterized over the registered backends (numpy / cffi / numba /
array_api), so each backend must reproduce the reference byte-for-byte
through both execution modes and the full algorithms, charges included.
Backends whose toolchain is missing skip with their fallback reason.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.constrained import constrained_multisearch
from repro.core.hierdag import hierdag_multisearch
from repro.core.model import QuerySet
from repro.core.splitters import splitting_from_labels
from repro.graphs.adapters import hierdag_search_structure, ktree_directed_structure
from repro.graphs.hierarchical import build_mu_ary_search_dag
from repro.graphs.ktree import build_balanced_search_tree
from repro.mesh.backend import get_backend, registered_backends
from repro.mesh.engine import MeshEngine
from repro.mesh.records import RecordSet

# long property suite: excluded from tier-1, run nightly (`pytest -m slow`);
# the fast path stays covered in tier-1 by the bench and engine unit tests
pytestmark = pytest.mark.slow


def _backend_params():
    params = []
    for name in registered_backends():
        be = get_backend(name)
        marks = ()
        if not be.native:
            marks = (
                pytest.mark.skip(
                    reason=f"{name} toolchain unavailable: {be.fallback_reason}"
                ),
            )
        params.append(pytest.param(name, marks=marks))
    return params


BACKENDS = _backend_params()


@st.composite
def grid_and_values(draw, max_side=8, lo=-100, hi=100):
    # same shape as tests/test_props_mesh.py: a mesh side plus one int per
    # processor
    side = draw(st.integers(2, max_side))
    n = side * side
    vals = draw(st.lists(st.integers(lo, hi), min_size=n, max_size=n))
    return side, np.array(vals, dtype=np.int64)


def both_engines(side, backend="numpy"):
    return (
        MeshEngine(side, fast_path=True, backend=backend),
        MeshEngine(side, fast_path=False, backend=backend),
    )


def assert_same(fast, slow):
    """Byte-identical arrays (dtype included); scalars compare directly."""
    if isinstance(fast, np.ndarray) or isinstance(slow, np.ndarray):
        fast, slow = np.asarray(fast), np.asarray(slow)
        assert fast.dtype == slow.dtype and fast.shape == slow.shape
        np.testing.assert_array_equal(fast, slow)
    else:
        assert fast == slow


def deep_same(a, b):
    """``assert_same`` through tuples (primitive outputs come in both shapes)."""
    if isinstance(a, tuple) or isinstance(b, tuple):
        assert len(a) == len(b)
        for x, y in zip(a, b):
            deep_same(x, y)
    else:
        assert_same(a, b)


def run_both(side, op, backend="numpy"):
    """``op(region)`` under each mode; returns outputs, asserting equal cost.

    For a non-numpy backend, also replays the op on the numpy reference
    engine and asserts the backend's slow-mode output and charges match
    it byte-for-byte — the backend conformance half of the suite.
    """
    eng_f, eng_s = both_engines(side, backend)
    out_f, out_s = op(eng_f.root), op(eng_s.root)
    assert eng_f.clock.time == eng_s.clock.time
    if backend != "numpy":
        ref = MeshEngine(side, fast_path=False)
        out_ref = op(ref.root)
        assert ref.clock.time == eng_s.clock.time
        deep_same(out_s, out_ref)
    return out_f, out_s


@pytest.mark.parametrize("backend", BACKENDS)
class TestPrimitiveEquivalence:
    @given(grid_and_values())
    @settings(max_examples=25, deadline=None)
    def test_sort_by(self, backend, case):
        side, vals = case
        tag = np.arange(vals.size, dtype=np.int64)
        fast, slow = run_both(side, lambda r: r.sort_by(vals, tag, vals * 0.5), backend)
        for f, s in zip(fast, slow):
            assert_same(f, s)

    @given(grid_and_values(), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_route(self, backend, case, seed):
        side, vals = case
        n = vals.size
        dest = np.random.default_rng(seed).permutation(n)
        dest[vals % 3 == 0] = -1  # discards exercise the fill path
        fast, slow = run_both(
            side, lambda r: r.route(dest, vals, vals * 1.0, fill=0), backend
        )
        for f, s in zip(fast, slow):
            assert_same(f, s)

    @given(grid_and_values())
    @settings(max_examples=25, deadline=None)
    def test_rar(self, backend, case):
        side, vals = case
        n = vals.size
        addr = np.abs(vals) % n
        addr[vals < 0] = -1
        fast, slow = run_both(side, lambda r: r.rar(addr, vals, vals * 2.0), backend)
        for f, s in zip(fast, slow):
            assert_same(f, s)

    @given(grid_and_values(), st.sampled_from(["add", "min", "max"]))
    @settings(max_examples=40, deadline=None)
    def test_raw_combining(self, backend, case, combine):
        side, vals = case
        n = vals.size
        addr = np.abs(vals) % n
        addr[::7] = -1
        fast, slow = run_both(
            side, lambda r: r.raw(addr, vals, size=n, combine=combine, fill=0),
            backend,
        )
        assert_same(fast, slow)

    @given(grid_and_values())
    @settings(max_examples=25, deadline=None)
    def test_raw_add_with_fill_and_floats(self, backend, case):
        side, vals = case
        n = vals.size
        addr = np.abs(vals) % n
        # float values take the np.add.at branch in both modes
        fast, slow = run_both(
            side, lambda r: r.raw(addr, vals * 0.5, size=n, combine="add", fill=3),
            backend,
        )
        assert_same(fast, slow)
        fast, slow = run_both(
            side, lambda r: r.raw(addr, vals, size=n, combine="add", fill=3),
            backend,
        )
        assert_same(fast, slow)

    @given(grid_and_values())
    @settings(max_examples=25, deadline=None)
    def test_compress(self, backend, case):
        side, vals = case
        fast, slow = run_both(side, lambda r: r.compress(vals > 0, vals), backend)
        assert_same(fast[0], slow[0])
        assert_same(fast[1], slow[1])

    @given(
        grid_and_values(),
        st.sampled_from(["add", "min", "max"]),
        st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_segmented_scan_matches_loop_reference(self, backend, case, op, inclusive):
        side, vals = case
        segs = np.abs(vals) % 4  # grouped-enough: boundaries at id changes
        fast, slow = run_both(
            side,
            lambda r: r.segmented_scan(vals, segs, op=op, inclusive=inclusive),
            backend,
        )
        assert_same(fast, slow)
        # the vectorized implementation against a per-segment python loop
        ufunc = {"add": np.add, "min": np.minimum, "max": np.maximum}[op]
        want = np.empty_like(vals)
        start = 0
        for i in range(1, vals.size + 1):
            if i == vals.size or segs[i] != segs[i - 1]:
                chunk = ufunc.accumulate(vals[start:i])
                if not inclusive:
                    ident = {
                        "add": 0,
                        "min": np.iinfo(vals.dtype).max,
                        "max": np.iinfo(vals.dtype).min,
                    }[op]
                    chunk = np.concatenate([[ident], chunk[:-1]])
                want[start:i] = chunk
                start = i
        assert_same(fast, want)


@pytest.mark.parametrize("backend", BACKENDS)
class TestFusedRecordEquivalence:
    """``*_records`` fused calls against their per-field counterparts."""

    def cases(self, vals):
        n = vals.size
        rs = RecordSet(
            key=vals.copy(),
            tag=np.arange(n, dtype=np.int64),
            w=vals * 0.25,
            pack=True,
        )
        return n, rs

    @given(grid_and_values())
    @settings(max_examples=25, deadline=None)
    def test_sort_records(self, backend, case):
        side, vals = case
        n, rs = self.cases(vals)
        eng_f, eng_s = both_engines(side, backend)
        fused = eng_f.root.sort_records(rs, "key")
        plain = eng_s.root.sort_by(vals, *rs.arrays())[1:]
        assert eng_f.clock.time == eng_s.clock.time
        for name, want in zip(rs.names, plain):
            assert_same(fused.field(name), want)

    @given(grid_and_values(), st.integers(0, 2**31))
    @settings(max_examples=25, deadline=None)
    def test_route_records(self, backend, case, seed):
        side, vals = case
        n, rs = self.cases(vals)
        dest = np.random.default_rng(seed).permutation(n)
        dest[vals % 3 == 0] = -1
        eng_f, eng_s = both_engines(side, backend)
        fused = eng_f.root.route_records(dest, rs, fill=0)
        plain = eng_s.root.route(dest, *rs.arrays(), fill=0)
        assert eng_f.clock.time == eng_s.clock.time
        for name, want in zip(rs.names, plain):
            assert_same(fused.field(name), want)

    @given(grid_and_values())
    @settings(max_examples=25, deadline=None)
    def test_rar_records(self, backend, case):
        side, vals = case
        n, rs = self.cases(vals)
        addr = np.abs(vals) % n
        addr[vals < 0] = -1
        eng_f, eng_s = both_engines(side, backend)
        fused = eng_f.root.rar_records(addr, rs, fill=0)
        plain = eng_s.root.rar(addr, *rs.arrays(), fill=0)
        assert eng_f.clock.time == eng_s.clock.time
        for name, want in zip(rs.names, plain):
            assert_same(fused.field(name), want)

    @given(grid_and_values())
    @settings(max_examples=25, deadline=None)
    def test_compress_records(self, backend, case):
        side, vals = case
        n, rs = self.cases(vals)
        mask = vals > 0
        eng_f, eng_s = both_engines(side, backend)
        count, fused = eng_f.root.compress_records(mask, rs)
        plain = eng_s.root.compress(mask, *rs.arrays())
        assert eng_f.clock.time == eng_s.clock.time
        assert count == plain[0]
        for name, want in zip(rs.names, plain[1:]):
            assert_same(fused.field(name), want)


def assert_query_sets_equal(a: QuerySet, b: QuerySet):
    assert_same(a.current, b.current)
    assert_same(a.steps, b.steps)
    assert_same(a.state, b.state)


@pytest.mark.parametrize("backend", BACKENDS)
class TestAlgorithmEquivalence:
    """E1/E2 end-to-end: identical answers AND identical step charges."""

    @given(st.integers(4, 7), st.integers(0, 2**31), st.integers(16, 96))
    @settings(max_examples=10, deadline=None)
    def test_e1_hierdag(self, backend, height, seed, m):
        dag, leaf_keys = build_mu_ary_search_dag(2, height, seed=1)
        structure = hierdag_search_structure(dag)
        keys = np.random.default_rng(seed).uniform(
            leaf_keys[0], leaf_keys[-1], m
        )
        # Two fast runs on the same structure: the first takes the cold
        # (per-field) path, the second the warm fused path.  Both must
        # match the slow engine exactly.
        results = []
        modes = [(True, backend), (True, backend), (False, backend)]
        if backend != "numpy":
            modes.append((False, "numpy"))  # the cross-backend reference
        for fast, be in modes:
            eng = MeshEngine.for_problem(
                max(int(dag.size), m), fast_path=fast, backend=be
            )
            qs = QuerySet.start(keys, 0)
            res = hierdag_multisearch(eng, structure, qs, mu=2.0, c=2)
            results.append((qs, res.mesh_steps, eng.clock.time))
        slow = results[-1]
        for fast_run in results[:-1]:
            assert_query_sets_equal(fast_run[0], slow[0])
            assert fast_run[1] == slow[1]
            assert fast_run[2] == slow[2]

    @given(
        st.integers(4, 7),
        st.integers(0, 2**31),
        st.sampled_from([0.0, 0.5, 1.0]),
    )
    @settings(max_examples=10, deadline=None)
    def test_e2_constrained(self, backend, height, seed, skew):
        tree = build_balanced_search_tree(2, height, seed=1)
        structure = ktree_directed_structure(tree)
        splitting = splitting_from_labels(
            tree.alpha_splitter().comp, tree.children, 0.5
        )
        rng = np.random.default_rng(seed)
        m = 64
        keys = rng.uniform(tree.leaf_keys[0], tree.leaf_keys[-1], m)
        cut = max(1, (tree.height + 1) // 2)
        roots = np.flatnonzero(tree.depth == cut)
        starts = np.zeros(m, dtype=np.int64)
        spread = rng.random(m) >= skew
        starts[spread] = roots[rng.integers(0, roots.size, m)][spread]
        keys[spread] = tree.subtree_lo[starts[spread]] + 1e-9
        # As in E1: cold fast run, warm (fused) fast run, then slow.
        results = []
        modes = [(True, backend), (True, backend), (False, backend)]
        if backend != "numpy":
            modes.append((False, "numpy"))  # the cross-backend reference
        for fast, be in modes:
            eng = MeshEngine.for_problem(
                max(int(tree.size), m), fast_path=fast, backend=be
            )
            qs = QuerySet.start(keys, starts.copy())
            stats = constrained_multisearch(eng, structure, qs, splitting)
            results.append((qs, stats, eng.clock.time))
        slow = results[-1]
        for fast_run in results[:-1]:
            assert_query_sets_equal(fast_run[0], slow[0])
            assert fast_run[2] == slow[2]
            assert fast_run[1].copies_created == slow[1].copies_created
            assert (
                fast_run[1].max_queries_per_copy
                == slow[1].max_queries_per_copy
            )
