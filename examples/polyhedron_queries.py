#!/usr/bin/env python
"""Line-polyhedron queries and polyhedron separation (Theorem 8, E6/E9).

Builds a Dobkin-Kirkpatrick hierarchy over a random convex polyhedron,
answers a batch of line queries (intersects? tangent planes?) as a
hierarchical-DAG multisearch, then separates two polyhedra with
hierarchy-accelerated support queries.
"""

import numpy as np

from repro.apps.linepoly import brute_force_line_test, line_polyhedron_queries
from repro.apps.separation import separate_polyhedra, separation_oracle
from repro.bench.workloads import random_lines, sphere_points
from repro.geometry.dk3d import build_dk_hierarchy


def main() -> None:
    pts = sphere_points(600, seed=11)
    hier = build_dk_hierarchy(pts, seed=5)
    sizes = [h.vertices.size for h in hier.hulls]
    print(f"polyhedron: {sizes[0]} hull vertices, DK hierarchy sizes {sizes}")

    p0, dirs = random_lines(200, seed=13)
    run = line_polyhedron_queries(hier, p0, dirs)
    oracle = brute_force_line_test(pts, hier.hulls[0].vertices, p0, dirs)
    assert (run.intersects == oracle).all()
    hits = int(run.intersects.sum())
    print(f"lines     : {hits}/{run.intersects.size} intersect; "
          f"{run.intersects.size - hits} got their two tangent planes")
    print(f"mesh steps: {run.mesh_steps:.0f}  (improving walks needed: {run.improved})")

    other = build_dk_hierarchy(sphere_points(600, seed=21, center=(3.0, 0, 0)), seed=6)
    res = separate_polyhedra(hier, other)
    assert res.decided and res.separated == separation_oracle(
        pts, other.points
    )
    print(f"separation: separated={res.separated} in {res.iterations} "
          f"Frank-Wolfe rounds, {res.support_queries} hierarchy support queries")
    if res.separated:
        n, c = res.plane[:3], res.plane[3]
        print(f"plane     : n=({n[0]:.3f}, {n[1]:.3f}, {n[2]:.3f}), offset {c:.3f}")


if __name__ == "__main__":
    main()
