#!/usr/bin/env python
"""Planar point location on the mesh (paper Section 5, experiment E7).

Builds a Kirkpatrick subdivision hierarchy over a random Delaunay
triangulation and answers a batch of point-location queries as one
hierarchical-DAG multisearch, verifying every answer geometrically.
"""

import numpy as np

from repro.apps.pointloc import locate_points_mesh
from repro.bench.workloads import uniform_sites
from repro.geometry.primitives import point_in_triangle
from repro.util.rng import make_rng


def main() -> None:
    rng = make_rng(42)
    sites = uniform_sites(500, seed=7)
    queries = rng.uniform(0, 100, (1000, 2))

    run = locate_points_mesh(sites, queries, seed=1)
    hier = run.hierarchy
    print(f"subdivision: {sites.shape[0]} sites, "
          f"{hier.base_triangles.shape[0]} triangles, "
          f"{hier.n_levels} hierarchy levels, DAG size {run.dag_size}")
    print(f"mesh steps : {run.mesh_steps:.0f} "
          f"({run.mesh_steps / run.dag_size ** 0.5:.1f} x sqrt(n))")

    pts = hier.points
    tris = hier.base_triangles
    located = 0
    for q, t in zip(queries, run.triangle):
        assert t >= 0, "query escaped the bounding triangle?"
        a, b, c = pts[tris[t, 0]], pts[tris[t, 1]], pts[tris[t, 2]]
        assert point_in_triangle(q, a, b, c), "wrong triangle!"
        located += 1
    print(f"verified   : {located}/{queries.shape[0]} queries in their triangles")


if __name__ == "__main__":
    main()
