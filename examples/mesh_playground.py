#!/usr/bin/env python
"""The two mesh substrates side by side (experiment E10's story).

Runs sorting, permutation routing, prefix scan, and broadcast on the
cycle-accurate mesh VM and compares results + step counts against the
counted-primitive engine's answers + charged costs.
"""

import numpy as np

from repro.mesh import MeshEngine, MeshVM
from repro.mesh.routing import route_permutation
from repro.mesh.scan import broadcast_from_origin, snake_prefix_sum
from repro.mesh.sorting import shearsort
from repro.mesh.topology import rowmajor_to_snake


def main() -> None:
    side = 16
    n = side * side
    rng = np.random.default_rng(0)
    print(f"{side}x{side} mesh, {n} processors\n")

    # --- sorting
    keys = rng.permutation(n).astype(np.int64)
    vm = MeshVM(side)
    vm.load_rowmajor("k", keys)
    shearsort(vm, "k")
    snake = rowmajor_to_snake(side, side)
    in_snake = np.empty(n, dtype=np.int64)
    in_snake[snake] = vm.dump_rowmajor("k")
    assert (np.diff(in_snake) >= 0).all()
    engine = MeshEngine(side)
    engine.root.sort_by(keys)
    print(f"sort      : VM shearsort {vm.steps:4d} steps "
          f"(~side*log(side)); engine charges {engine.clock.time:.0f} "
          f"(optimal-sort model)")

    # --- permutation routing
    vm2 = MeshVM(side)
    dest = rng.permutation(n)
    delivered = route_permutation(vm2, dest, np.arange(n))
    assert (delivered[dest] == np.arange(n)).all()
    engine2 = MeshEngine(side)
    engine2.root.route(dest, np.arange(n))
    print(f"route     : VM {vm2.steps:4d} steps (one sort); "
          f"engine charges {engine2.clock.time:.0f}")

    # --- prefix scan
    vals = rng.integers(0, 10, n)
    vm3 = MeshVM(side)
    vm3.load_rowmajor("v", vals)
    snake_prefix_sum(vm3, "v", "p")
    order = np.argsort(snake)
    expect = np.empty(n, dtype=np.int64)
    expect[order] = np.cumsum(vals[order])
    assert (vm3.dump_rowmajor("p") == expect).all()
    engine3 = MeshEngine(side)
    engine3.root.scan(vals)
    print(f"scan      : VM {vm3.steps:4d} steps (~3*side); "
          f"engine charges {engine3.clock.time:.0f}")

    # --- broadcast
    vm4 = MeshVM(side)
    vm4.alloc("s", 0.0)
    vm4["s"][0, 0] = 42.0
    broadcast_from_origin(vm4, "s", "d")
    assert (vm4["d"] == 42.0).all()
    engine4 = MeshEngine(side)
    engine4.root.broadcast(42.0)
    print(f"broadcast : VM {vm4.steps:4d} steps (2*side - 2); "
          f"engine charges {engine4.clock.time:.0f}")


if __name__ == "__main__":
    main()
