#!/usr/bin/env python
"""Quickstart: n key searches on a mu-ary search DAG, three ways.

Runs the same batch of queries with (1) the sequential reference oracle,
(2) the synchronous [DR90]-style baseline, and (3) the paper's Algorithm 1
(Theorem 2), and prints mesh step counts — the paper's cost measure.
"""

import numpy as np

from repro import (
    MeshEngine,
    QuerySet,
    build_mu_ary_search_dag,
    hierdag_multisearch,
    hierdag_search_structure,
    run_reference,
    synchronous_multisearch,
)


def main() -> None:
    rng = np.random.default_rng(0)
    height = 14
    dag, leaf_keys = build_mu_ary_search_dag(mu=2, height=height, seed=1)
    structure = hierdag_search_structure(dag)
    n = structure.size
    m = 4096
    keys = rng.uniform(leaf_keys[0], leaf_keys[-1], m)
    print(f"search DAG: mu=2 height={height}  n=|V|+|E|={n}  queries m={m}")

    # 1. sequential oracle
    ref = run_reference(structure, keys, start_vertex=0)
    print(f"reference: every search path has {len(ref.paths()[0])} vertices")

    # 2. synchronous baseline: one full-mesh step per path vertex
    engine = MeshEngine.for_problem(max(n, m))
    qs = QuerySet.start(keys, 0, record_trace=True)
    base = synchronous_multisearch(engine, structure, qs)
    assert qs.paths() == ref.paths()
    print(f"baseline : {base.mesh_steps:10.0f} mesh steps "
          f"({base.mesh_steps / n ** 0.5:.1f} x sqrt(n))")

    # 3. Algorithm 1 (Theorem 2)
    engine = MeshEngine.for_problem(max(n, m))
    qs = QuerySet.start(keys, 0, record_trace=True)
    ours = hierdag_multisearch(engine, structure, qs, mu=2.0, c=2)
    assert qs.paths() == ref.paths()
    print(f"Theorem 2: {ours.mesh_steps:10.0f} mesh steps "
          f"({ours.mesh_steps / n ** 0.5:.1f} x sqrt(n))")
    print(f"speedup  : {base.mesh_steps / ours.mesh_steps:.2f}x "
          f"(grows with n; see benchmarks/bench_e1_hierdag.py)")


if __name__ == "__main__":
    main()
