#!/usr/bin/env python
"""Multiple interval intersection search on the mesh (paper Section 6, E8).

Counts and reports, for each of m query intervals, the stored intervals it
intersects — counting via two rank multisearches (Theorem 5), reporting
via a range-walk plus an interval-tree stabbing multisearch (Theorem 7) —
and verifies both against brute force.
"""

import numpy as np

from repro.apps.interval_search import (
    count_intersections_mesh,
    report_intersections_mesh,
    setup_interval_search,
)
from repro.bench.workloads import random_intervals
from repro.intervals.interval_tree import brute_force_intersections
from repro.util.rng import make_rng


def main() -> None:
    rng = make_rng(3)
    n, m = 1000, 300
    lefts, rights = random_intervals(n, seed=5)
    a = rng.uniform(0, 1000, m)
    b = a + rng.uniform(0.5, 30, m)

    setup = setup_interval_search(lefts, rights)
    counts, steps_c = count_intersections_mesh(setup, a, b)
    reports, steps_r = report_intersections_mesh(setup, a, b)

    total_k = 0
    for i in range(m):
        want = brute_force_intersections(lefts, rights, a[i], b[i])
        assert counts[i] == want.size
        assert set(reports[i].tolist()) == set(want.tolist())
        total_k += want.size
    print(f"{n} stored intervals, {m} queries, total output k = {total_k}")
    print(f"counting  : {steps_c:10.0f} mesh steps (two Theorem 5 rank multisearches)")
    print(f"reporting : {steps_r:10.0f} mesh steps (Theorem 7 range walk + stabbing)")
    print("all counts and reports verified against brute force")


if __name__ == "__main__":
    main()
