#!/usr/bin/env python
"""A dynamic parallel dictionary: 2-3 tree updates + batched mesh lookups.

The paper's intro cites Paul-Vishkin-Wagener's parallel dictionaries on
2-3 trees as the PRAM ancestor of multisearch.  This example maintains a
real 2-3 tree under inserts and deletes, then periodically snapshots it
onto the mesh and answers a batch of lookups as an alpha-partitionable
multisearch (Theorem 5) — on an *irregular* tree with mixed arities.
"""

import numpy as np

from repro.core.alpha import alpha_multisearch
from repro.core.model import QuerySet
from repro.graphs.twothree import TwoThreeTree, flatten_two_three
from repro.mesh.engine import MeshEngine
from repro.util.rng import make_rng


def main() -> None:
    rng = make_rng(0)
    tree = TwoThreeTree()
    universe = rng.choice(100_000, 3000, replace=False).astype(float)

    # phase 1: build under a random insert/delete mix
    for k in universe:
        tree.insert(k)
    for k in rng.choice(universe, 800, replace=False):
        tree.delete(float(k))
    tree.check_invariants()
    present = np.array(tree.keys())
    print(f"2-3 tree: {len(tree)} keys, height {tree.height()}")

    # phase 2: snapshot onto the mesh and run a lookup batch
    structure, splitting, leaf_key = flatten_two_three(tree)
    m = 1024
    queries = present[rng.integers(0, present.size, m)]
    engine = MeshEngine.for_problem(max(structure.size, m))
    qs = QuerySet.start(queries, 0, record_trace=True)
    res = alpha_multisearch(engine, structure, qs, splitting)

    finals = np.array([p[-1] for p in qs.paths()])
    hits = (leaf_key[finals] == queries).sum()
    print(f"lookups  : {hits}/{m} found their key "
          f"({res.mesh_steps:.0f} mesh steps, "
          f"{res.detail['log_phases']:.0f} log-phases)")
    assert hits == m

    # phase 3: more updates, fresh snapshot, repeat
    for k in rng.choice(present, 500, replace=False):
        tree.delete(float(k))
    structure, splitting, leaf_key = flatten_two_three(tree)
    remaining = np.array(tree.keys())
    queries = remaining[rng.integers(0, remaining.size, m)]
    engine = MeshEngine.for_problem(max(structure.size, m))
    qs = QuerySet.start(queries, 0, record_trace=True)
    alpha_multisearch(engine, structure, qs, splitting)
    finals = np.array([p[-1] for p in qs.paths()])
    assert (leaf_key[finals] == queries).all()
    print(f"after deletions: {len(tree)} keys, all {m} fresh lookups verified")


if __name__ == "__main__":
    main()
