"""E5 — Lemma 1: the two-phase band solver runs in
O(sqrt(|B_i|) * log(Delta h_i)) on its submesh.

Sweeps the DAG height and measures the Lemma 1 charge for band B_0
against the closed form, plus the phase split (Phase 1 must dominate the
level count but not the cost).
"""

import numpy as np
import pytest

from repro.bench.reporting import Table
from repro.core.hierdag import lemma1_band_steps, plan_hierdag
from repro.core.model import QuerySet
from repro.graphs.adapters import hierdag_search_structure
from repro.graphs.hierarchical import build_mu_ary_search_dag
from repro.mesh.engine import MeshEngine

HEIGHTS = [10, 12, 14, 16]
M = 512


def run_once(height: int):
    dag, leaf_keys = build_mu_ary_search_dag(2, height, seed=1)
    st = hierdag_search_structure(dag)
    rng = np.random.default_rng(2)
    keys = rng.uniform(leaf_keys[0], leaf_keys[-1], M)
    eng = MeshEngine.for_problem(max(dag.size, M))
    plan = plan_hierdag(st, eng.shape.rows, 2.0, c=2)
    bp = plan.bands[0]
    qs = QuerySet.start(keys, 0)
    t0 = eng.clock.time
    detail = lemma1_band_steps(eng, st, qs, bp)
    return eng.clock.time - t0, bp, detail


@pytest.fixture(scope="module")
def e5_table(save_table):
    table = Table(
        "E5 / Lemma 1: band B_0 solver, steps vs sqrt(|B_0|)*log(dh)",
        ["height", "|B0|", "dh", "steps", "bound_ratio", "phase1", "phase2"],
    )
    rows = []
    for h in HEIGHTS:
        steps, bp, detail = run_once(h)
        bound = bp.sub_side * 8.0 * (np.log2(max(bp.band.n_levels, 2)) + 2)
        rows.append((steps, bound))
        table.add(
            h,
            bp.band.n_vertices,
            bp.band.n_levels,
            steps,
            steps / bound,
            detail["phase1"],
            detail["phase2"],
        )
    save_table(table, "e5_lemma1")
    return rows


def test_e5_shape(e5_table, benchmark):
    for steps, bound in e5_table:
        assert steps <= 2.5 * bound
    benchmark(run_once, 14)
