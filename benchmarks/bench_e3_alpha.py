"""E3 — Theorem 5: alpha-partitionable multisearch in
O(sqrt(n) + r*sqrt(n)/log n), vs the O(r*sqrt(n)) synchronous baseline.

The broom workload sweeps the longest search path r (handle length) at
roughly constant n.  Success: Algorithm 2's cost grows like r/log n
full-phase units, the baseline's like r; the speedup approaches
Theta(log n); the crossover sits at r = Theta(log n).
"""

import numpy as np
import pytest

from repro.bench.reporting import Table
from repro.core.alpha import alpha_multisearch
from repro.core.analysis import predict_baseline, predict_theorem5
from repro.core.baseline import synchronous_multisearch
from repro.core.model import QuerySet
from repro.graphs.broom import broom_structure, build_broom
from repro.mesh.engine import MeshEngine

TREE_HEIGHT = 6  # 64 handles
M = 1024
HANDLES = [4, 16, 64, 192, 448]


def run_once(handle_len: int, method: str):
    br = build_broom(2, TREE_HEIGHT, handle_len, seed=1)
    st = broom_structure(br)
    rng = np.random.default_rng(2)
    keys = rng.uniform(br.tree.leaf_keys[0], br.tree.leaf_keys[-1], M)
    eng = MeshEngine.for_problem(max(br.size, M))
    qs = QuerySet.start(keys, 0)
    if method == "alpha":
        res = alpha_multisearch(eng, st, qs, br.splitting())
    else:
        res = synchronous_multisearch(eng, st, qs, max_steps=10**6)
    # predictions must use the engine's actual mesh size (>= max(n, m))
    return res.mesh_steps, eng.size, br.longest_path


@pytest.fixture(scope="module")
def e3_table(save_table):
    table = Table(
        "E3 / Theorem 5: r sweep on the broom (64 handles, m=1024 queries)",
        ["L", "r", "n", "alg2_steps", "base_steps", "speedup",
         "pred_alg2", "pred_base"],
    )
    rows = []
    for L in HANDLES:
        ours, n, r = run_once(L, "alpha")
        base, _, _ = run_once(L, "baseline")
        rows.append((r, n, ours, base))
        table.add(L, r, n, ours, base, base / ours,
                  predict_theorem5(n, r), predict_baseline(n, r))
    save_table(table, "e3_alpha")
    return rows


def test_e3_shape(e3_table, benchmark):
    rows = e3_table
    speedups = [b / o for (_, _, o, b) in rows]
    # baseline wins for tiny r (phase overhead), ours wins for large r,
    # with the crossover between the small-r and large-r ends of the sweep
    assert speedups[0] < 1.0
    assert speedups[-1] > 1.3
    # monotone improving advantage along the sweep
    assert speedups[-1] == max(speedups)
    # the closed-form predictions track the measurements
    for r, n, ours, base in rows:
        assert ours <= 3.0 * predict_theorem5(n, r)
        assert abs(base - predict_baseline(n, r)) <= 0.05 * base
    benchmark(run_once, 64, "alpha")
