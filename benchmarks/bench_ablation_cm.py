"""Ablation — Constrained-Multisearch round budget (the ``x = log2 n``
design choice of Section 4.4).

Algorithm 2's log-phase calls CM with ``x = log2 n`` rounds.  Fewer
rounds mean more log-phases, each paying the full-mesh global ops
(sorts/routes at O(sqrt(n))); more rounds add only O(sqrt(n^delta)) per
round on the submeshes.  The sweep shows the resulting asymmetry:

* starving the budget (x = log n / 4) multiplies the phase count and the
  total cost — the Omega(log n) advancement guarantee is load-bearing;
* *raising* the budget keeps helping in this regime, because a round
  costs only n^(delta/2) << sqrt(n): rounds are effectively free until
  ``x ~ n^((1-delta)/2)`` (n^(1/4) here), far above log n at any
  feasible size.  ``x = log n`` is the smallest budget that achieves the
  Theorem 5 bound; the theorem's statement is insensitive to anything in
  [log n, n^(1/4)], and the measurement confirms both halves.
"""

import math

import numpy as np
import pytest

from repro.bench.reporting import Table
from repro.core.alpha import run_log_phase
from repro.core.model import GraphStore, MultisearchResult, QuerySet
from repro.core.constrained import constrained_multisearch
from repro.core.model import advance_queries
from repro.graphs.broom import broom_structure, build_broom
from repro.mesh.engine import MeshEngine

SCALES = [0.25, 0.5, 1.0, 2.0, 4.0]
M = 1024


def alpha_with_rounds(engine, structure, qs, splitting, rounds, limit=10_000):
    """Algorithm 2 with an explicit CM round budget."""
    store = GraphStore.load(engine.root, structure)
    start = engine.clock.current
    phases = 0
    while qs.active.any():
        if phases >= limit:
            raise RuntimeError("no termination")
        if phases > 0:
            advance_queries(store, structure, qs, label="logphase:step1")
        constrained_multisearch(engine, structure, qs, splitting, rounds=rounds)
        advance_queries(store, structure, qs, label="logphase:step3")
        constrained_multisearch(engine, structure, qs, splitting, rounds=rounds)
        phases += 1
    return engine.clock.current - start, phases


def run_once(scale: float):
    br = build_broom(2, 6, 192, seed=1)
    st = broom_structure(br)
    sp = br.splitting()
    rng = np.random.default_rng(2)
    keys = rng.uniform(br.tree.leaf_keys[0], br.tree.leaf_keys[-1], M)
    eng = MeshEngine.for_problem(max(br.size, M))
    qs = QuerySet.start(keys, 0)
    log_n = math.ceil(math.log2(br.size))
    rounds = max(1, int(round(scale * log_n)))
    steps, phases = alpha_with_rounds(eng, st, qs, sp, rounds)
    return steps, phases, rounds


@pytest.fixture(scope="module")
def cm_table(save_table):
    table = Table(
        "Ablation: CM round budget x (broom, r=199, m=1024)",
        ["x/log(n)", "rounds", "steps", "log_phases"],
    )
    rows = []
    for s in SCALES:
        steps, phases, rounds = run_once(s)
        rows.append((s, steps, phases))
        table.add(s, rounds, steps, phases)
    save_table(table, "ablation_cm_rounds")
    return rows


def test_ablation_cm(cm_table, benchmark):
    by_scale = {s: steps for s, steps, _ in cm_table}
    # starving CM (x = log n / 4) forces ~4x the phases and costs more
    assert by_scale[0.25] > 1.3 * by_scale[1.0]
    # extra rounds are nearly free below x ~ n^(1/4): cost is monotone
    # non-increasing in the budget across the sweep
    ordered = [by_scale[s] for s in SCALES]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))
    # but with diminishing returns: quadrupling the budget from the
    # paper's log n buys far less than the 4x saved when quartering it
    assert by_scale[1.0] / by_scale[4.0] < by_scale[0.25] / by_scale[1.0]
    # phase count scales inversely with the budget
    phases = {s: p for s, _, p in cm_table}
    assert phases[0.25] > 2 * phases[1.0] - 1
    assert phases[4.0] <= phases[1.0]
    benchmark(run_once, 1.0)
