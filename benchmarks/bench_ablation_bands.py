"""Ablation — what the band machinery buys (Algorithm 1 design choices).

Three variants of hierarchical-DAG multisearch at fixed n:

* ``c=2``   — engineering band constant (benches' default): most bands;
* ``c=4``   — the paper's constant ``mu_constant(2)``: fewer bands at
              feasible heights (the log* tower collapses earlier);
* ``none``  — bands disabled: every level processed at full-mesh side,
              i.e. the naive O(sqrt(n) log n) schedule.

Plus the per-stage cost profile of the ``c=2`` run, showing where the
steps go (B* tail vs band phases).
"""

import numpy as np
import pytest

from repro.bench.reporting import Table
from repro.core.bands import compute_bands
from repro.core.hierdag import HierDagPlan, hierdag_multisearch, plan_hierdag
from repro.core.model import QuerySet
from repro.graphs.adapters import hierdag_search_structure
from repro.graphs.hierarchical import build_mu_ary_search_dag
from repro.mesh.engine import MeshEngine
from repro.mesh.profile import profiled

HEIGHTS = [12, 14, 16]
M = 1024


def no_band_plan(st, mesh_side: int) -> HierDagPlan:
    """A plan with an empty band list: everything lands in B*."""
    level_sizes = np.bincount(st.level)
    deco = compute_bands(level_sizes, 2.0, c=10**6)  # c huge -> log* < 0
    assert not deco.bands
    return HierDagPlan(deco, [], mesh_side, 1 + st.adjacency.shape[1])


def run_once(height: int, variant: str):
    dag, leaf_keys = build_mu_ary_search_dag(2, height, seed=1)
    st = hierdag_search_structure(dag)
    rng = np.random.default_rng(2)
    keys = rng.uniform(leaf_keys[0], leaf_keys[-1], M)
    eng = MeshEngine.for_problem(max(dag.size, M))
    qs = QuerySet.start(keys, 0)
    if variant == "none":
        plan = no_band_plan(st, eng.shape.rows)
        res = hierdag_multisearch(eng, st, qs, mu=2.0, plan=plan)
    else:
        res = hierdag_multisearch(eng, st, qs, mu=2.0, c=int(variant[2:]))
    assert not qs.active.any()
    return res, dag.size


@pytest.fixture(scope="module")
def ablation_table(save_table):
    table = Table(
        "Ablation: Algorithm 1 band machinery (steps / sqrt(n))",
        ["height", "n", "c=2", "c=4", "no bands", "bands_c2", "bands_c4"],
    )
    rows = []
    for h in HEIGHTS:
        res2, n = run_once(h, "c=2")
        res4, _ = run_once(h, "c=4")
        res0, _ = run_once(h, "none")
        deco2 = compute_bands(np.array([2**i for i in range(h + 1)]), 2.0, c=2)
        deco4 = compute_bands(np.array([2**i for i in range(h + 1)]), 2.0, c=4)
        rows.append((n, res2.mesh_steps, res4.mesh_steps, res0.mesh_steps))
        table.add(
            h, n,
            res2.mesh_steps / n**0.5,
            res4.mesh_steps / n**0.5,
            res0.mesh_steps / n**0.5,
            len(deco2.bands),
            len(deco4.bands),
        )
    save_table(table, "ablation_bands")

    # stage profile at the largest height
    dag, leaf_keys = build_mu_ary_search_dag(2, HEIGHTS[-1], seed=1)
    st = hierdag_search_structure(dag)
    eng = MeshEngine.for_problem(max(dag.size, M))
    qs = QuerySet.start(
        np.random.default_rng(2).uniform(leaf_keys[0], leaf_keys[-1], M), 0
    )
    with profiled(eng.clock) as prof:
        hierdag_multisearch(eng, st, qs, mu=2.0, c=2)
    t2 = Table(
        f"Ablation: c=2 cost profile at height={HEIGHTS[-1]}",
        ["label", "steps", "fraction"],
    )
    for label, cost in prof.top(8):
        t2.add(label, cost, cost / prof.total)
    save_table(t2, "ablation_bands_profile")
    return rows


def test_ablation_bands(ablation_table, benchmark):
    for n, c2, c4, none in ablation_table:
        # bands help monotonically: more bands, fewer steps
        assert c2 <= c4 <= none
    # at the largest height the band machinery saves a solid margin
    n, c2, _, none = ablation_table[-1]
    assert none / c2 > 1.3
    benchmark(run_once, 12, "c=2")
