"""Context bench — the paper's positioning against [DR90].

Three strategies on the same broom workload (r sweep):

* hypercube synchronous — [DR90]'s approach on its native network,
  O(r log n) (diameter log n per advancement);
* mesh synchronous      — the same approach on the mesh, O(r sqrt(n)):
  the non-starter the paper's introduction calls out;
* mesh multisearch      — Algorithm 2, O(sqrt(n) + r sqrt(n)/log n).

The point the table makes: the synchronous strategy's cost is governed
by the network diameter, so it is viable on the hypercube and hopeless
on the mesh; the paper's contribution is recovering mesh-optimality
despite the sqrt(n) diameter (a mesh algorithm cannot beat sqrt(n) —
that is the distance information must travel).
"""

import numpy as np
import pytest

from repro.bench.reporting import Table
from repro.core.alpha import alpha_multisearch
from repro.core.baseline import synchronous_multisearch
from repro.core.model import QuerySet
from repro.graphs.broom import broom_structure, build_broom
from repro.hypercube import HypercubeEngine
from repro.mesh.engine import MeshEngine

M = 1024
HANDLES = [16, 64, 192]


def run_once(handle_len: int, strategy: str):
    br = build_broom(2, 6, handle_len, seed=1)
    st = broom_structure(br)
    rng = np.random.default_rng(2)
    keys = rng.uniform(br.tree.leaf_keys[0], br.tree.leaf_keys[-1], M)
    if strategy == "hypercube":
        eng = HypercubeEngine.for_problem(max(br.size, M))
        qs = QuerySet.start(keys, 0)
        res = synchronous_multisearch(eng, st, qs, max_steps=10**6)
    elif strategy == "mesh-sync":
        eng = MeshEngine.for_problem(max(br.size, M))
        qs = QuerySet.start(keys, 0)
        res = synchronous_multisearch(eng, st, qs, max_steps=10**6)
    else:
        eng = MeshEngine.for_problem(max(br.size, M))
        qs = QuerySet.start(keys, 0)
        res = alpha_multisearch(eng, st, qs, br.splitting())
    return res.mesh_steps, br.size, br.longest_path


@pytest.fixture(scope="module")
def dr90_table(save_table):
    table = Table(
        "DR90 context: synchronous-on-hypercube vs mesh strategies (broom)",
        ["r", "n", "hypercube_sync", "mesh_sync", "mesh_multisearch",
         "mesh_ms/mesh_sync"],
    )
    rows = []
    for L in HANDLES:
        hc, n, r = run_once(L, "hypercube")
        ms, _, _ = run_once(L, "mesh-sync")
        mm, _, _ = run_once(L, "multisearch")
        rows.append((r, n, hc, ms, mm))
        table.add(r, n, hc, ms, mm, mm / ms)
    save_table(table, "dr90_hypercube")
    return rows


def test_dr90_context(dr90_table, benchmark):
    for r, n, hc, ms, mm in dr90_table:
        # the diameter gap: hypercube synchronous beats mesh synchronous
        assert hc < ms / 3
        # per-advancement: hypercube pays ~log n, mesh-sync ~sqrt(n)
        assert hc / r < 4 * np.log2(n) + 8
    # on the mesh, multisearch closes most of the synchronous deficit at
    # large r (the paper's contribution)
    r, n, hc, ms, mm = dr90_table[-1]
    assert mm < ms
    benchmark(run_once, 64, "multisearch")
