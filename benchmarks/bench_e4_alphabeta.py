"""E4 — Theorem 7: alpha-beta-partitionable multisearch (undirected range
walks) in O(sqrt(n) + r*sqrt(n)/log n).

Range walks over an undirected balanced tree; the range width sweeps the
walk length r.  Success: Algorithm 3's steps grow like ceil(r / Omega(log
n)) phase units while the baseline pays r full-mesh multisteps.
"""

import numpy as np
import pytest

from repro.bench.reporting import Table
from repro.core.alphabeta import alphabeta_multisearch
from repro.core.baseline import synchronous_multisearch
from repro.core.model import QuerySet, run_reference
from repro.core.splitters import splitting_from_labels
from repro.graphs.adapters import ktree_range_structure
from repro.graphs.ktree import build_balanced_search_tree
from repro.mesh.engine import MeshEngine

HEIGHT = 11
M = 512
WIDTHS = [2.0, 16.0, 64.0, 256.0]


def setup():
    t = build_balanced_search_tree(2, HEIGHT, seed=1)
    st = ktree_range_structure(t)
    s1, s2, _ = t.alpha_beta_splitters()
    sp1 = splitting_from_labels(s1.comp, t.children, 0.5)
    sp2 = splitting_from_labels(s2.comp, t.children, 1 / 3)
    return t, st, sp1, sp2


def make_keys(t, width):
    rng = np.random.default_rng(3)
    lo = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1] - width, M)
    return np.stack([lo, lo + width], axis=1)


def run_once(width: float, method: str):
    t, st, sp1, sp2 = setup()
    keys = make_keys(t, width)
    eng = MeshEngine.for_problem(max(t.size, M))
    qs = QuerySet.start(keys, 0, state_width=2)
    if method == "alphabeta":
        res = alphabeta_multisearch(eng, st, qs, sp1, sp2)
    else:
        res = synchronous_multisearch(eng, st, qs, max_steps=10**6)
    return res.mesh_steps, t.size


@pytest.fixture(scope="module")
def e4_table(save_table):
    t, st, _, _ = setup()
    table = Table(
        f"E4 / Theorem 7: range-walk width sweep (height={HEIGHT}, m={M})",
        ["width", "r_max", "alg3_steps", "base_steps", "speedup"],
    )
    rows = []
    for w in WIDTHS:
        keys = make_keys(t, w)
        ref = run_reference(st, keys, 0, state_width=2, max_steps=200_000)
        r = max(len(p) for p in ref.paths())
        ours, n = run_once(w, "alphabeta")
        base, _ = run_once(w, "baseline")
        rows.append((r, n, ours, base))
        table.add(w, r, ours, base, base / ours)
    save_table(table, "e4_alphabeta")
    return rows


def test_e4_shape(e4_table, benchmark):
    rows = e4_table
    speedups = [b / o for (_, _, o, b) in rows]
    assert speedups[-1] > 1.4
    assert speedups[-1] == max(speedups)
    # ours sublinear in r: the widest walk costs far less than r/ r0 times
    r0, _, o0, _ = rows[0]
    r1, _, o1, _ = rows[-1]
    assert o1 / o0 < 0.5 * r1 / r0
    benchmark(run_once, 64.0, "alphabeta")
