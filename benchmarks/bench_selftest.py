"""Runner self-test bench: deterministic ok / fail / crash / hang modes.

Exists so the resilient runner's failure paths are testable end-to-end:
spawned workers re-import this module by name, so the failure behaviors
must live in a real registered bench rather than a monkeypatched stub.
Only the ``ok`` mode appears in the default sweep; tests reach the others
by overriding the sweep points in the parent process.
"""

import os
import time


def run_once(mode: str = "ok") -> tuple[float, int]:
    if mode == "ok":
        return 1.0, 1
    if mode == "fail":
        raise RuntimeError("selftest: deliberate failure")
    if mode == "crash":
        # die without unwinding: simulates a segfault / OOM kill, which
        # the parent sees as EOF on the result pipe
        os._exit(139)
    if mode == "hang":
        time.sleep(3600)
    raise ValueError(f"unknown selftest mode: {mode}")
