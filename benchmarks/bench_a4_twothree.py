"""A4 — generality: Theorem 5 on an irregular dynamic tree.

Algorithm 2's machinery (splitters, constrained multisearch) is defined
for arbitrary alpha-partitionable graphs, but E3 exercises only complete
trees.  This bench runs the same lookup batch over (a) a complete binary
search tree and (b) a 2-3 tree built by random inserts + deletes over the
same key set, and checks the costs stay within a constant factor —
irregular arities and allocation-ordered vertex ids change nothing.
"""

import numpy as np
import pytest

from repro.bench.reporting import Table
from repro.core.alpha import alpha_multisearch
from repro.core.model import QuerySet
from repro.core.splitters import splitting_from_labels
from repro.graphs.adapters import ktree_directed_structure
from repro.graphs.ktree import tree_from_keys
from repro.graphs.twothree import TwoThreeTree, flatten_two_three
from repro.mesh.engine import MeshEngine

SIZES = [256, 1024, 4096]
M = 1024


def run_once(n: int, variant: str):
    rng = np.random.default_rng(n)
    keys = np.sort(rng.choice(10 * n, n, replace=False)).astype(float)
    queries = keys[rng.integers(0, n, M)]
    if variant == "complete":
        t = tree_from_keys(2, keys)
        st = ktree_directed_structure(t)
        sp = splitting_from_labels(t.alpha_splitter().comp, t.children, 0.5)
        size = t.size
    else:
        tt = TwoThreeTree()
        for k in rng.permutation(keys):
            tt.insert(float(k))
        for k in rng.choice(keys, n // 4, replace=False):
            tt.delete(float(k))
        for k in rng.choice(keys, n // 4, replace=False):
            tt.insert(float(k))
        st, sp, leaf_key = flatten_two_three(tt)
        size = st.size
    eng = MeshEngine.for_problem(max(size, M))
    qs = QuerySet.start(queries, 0)
    res = alpha_multisearch(eng, st, qs, sp)
    assert not qs.active.any()
    return res.mesh_steps, size


@pytest.fixture(scope="module")
def a4_table(save_table):
    table = Table(
        "A4: Theorem 5 on complete vs irregular (2-3) trees, m=1024 lookups",
        ["n_keys", "complete_n", "complete_steps", "tt_n", "tt_steps",
         "steps_ratio"],
    )
    rows = []
    for n in SIZES:
        cs, cn = run_once(n, "complete")
        ts, tn = run_once(n, "twothree")
        rows.append((cs, cn, ts, tn))
        table.add(n, cn, cs, tn, ts, ts / cs)
    save_table(table, "a4_twothree")
    return rows


def test_a4_generality(a4_table, benchmark):
    for cs, cn, ts, tn in a4_table:
        # normalize by structure size (the trees differ in |V|+|E|)
        ratio = (ts / tn**0.5) / (cs / cn**0.5)
        assert 0.3 < ratio < 3.0
    benchmark(run_once, 1024, "twothree")
