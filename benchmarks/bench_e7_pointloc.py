"""E7 — Section 5: multiple planar point location via the Kirkpatrick
subdivision hierarchy, as a Theorem 2 multisearch.

Sweeps the subdivision size; all answers verified geometrically.
Success: Algorithm 1's steps/sqrt(DAG size) bounded while the synchronous
baseline's ratio grows with the hierarchy depth.
"""

import numpy as np
import pytest

from repro.apps.pointloc import locate_points_mesh
from repro.bench.reporting import Table
from repro.bench.workloads import uniform_sites
from repro.geometry.primitives import point_in_triangle
from repro.util.rng import make_rng

SIZES = [100, 200, 400, 800]
M = 512


def run_once(n_sites: int, method: str):
    sites = uniform_sites(n_sites, seed=n_sites)
    q = make_rng(1).uniform(0, 100, (M, 2))
    run = locate_points_mesh(sites, q, seed=2, method=method)
    pts = run.hierarchy.points
    tris = run.hierarchy.base_triangles
    ok = 0
    for p, t in zip(q, run.triangle):
        if t >= 0 and point_in_triangle(p, pts[tris[t, 0]], pts[tris[t, 1]], pts[tris[t, 2]]):
            ok += 1
    return run, ok / M


@pytest.fixture(scope="module")
def e7_table(save_table):
    table = Table(
        f"E7 / Section 5: point location, m={M} queries",
        ["sites", "dag_size", "levels", "alg1_steps", "alg1/sqrt(n)",
         "base_steps", "base/sqrt(n)", "verified"],
    )
    rows = []
    for n in SIZES:
        ours, ok1 = run_once(n, "hierdag")
        base, ok2 = run_once(n, "baseline")
        rows.append((ours.mesh_steps, base.mesh_steps, ours.dag_size, ok1, ok2))
        table.add(
            n,
            ours.dag_size,
            ours.hierarchy.n_levels,
            ours.mesh_steps,
            ours.mesh_steps / ours.dag_size**0.5,
            base.mesh_steps,
            base.mesh_steps / base.dag_size**0.5,
            min(ok1, ok2),
        )
    save_table(table, "e7_pointloc")
    return rows


@pytest.fixture(scope="module")
def e7_faces_table(save_table):
    """Face location in polygonal subdivisions ([Kir83]'s full setting)."""
    from repro.apps.pointloc import locate_faces_mesh

    table = Table(
        f"E7b / Section 5: polygonal-face location, m={M} queries",
        ["sites", "faces", "largest_face", "mesh_steps", "verified"],
    )
    rows = []
    for n in (100, 400):
        sites = uniform_sites(n, seed=n + 1)
        q = make_rng(2).uniform(0, 100, (M, 2))
        run = locate_faces_mesh(sites, q, merge_fraction=0.7, seed=3)
        want = run.subdivision.locate_face_brute(q)
        ok = bool((run.face == want).all())
        rows.append(ok)
        table.add(
            n,
            run.subdivision.n_faces,
            int(run.subdivision.face_sizes().max()),
            run.mesh_steps,
            ok,
        )
    save_table(table, "e7b_faces")
    return rows


def test_e7_shape(e7_table, benchmark):
    for ours, base, dag_size, ok1, ok2 in e7_table:
        assert ok1 == 1.0 and ok2 == 1.0
    ratios_ours = [o / d**0.5 for o, _, d, _, _ in e7_table]
    ratios_base = [b / d**0.5 for _, b, d, _, _ in e7_table]
    assert max(ratios_ours) / min(ratios_ours) < 2.0
    # at the largest size the baseline pays more per sqrt(n)
    assert ratios_base[-1] > ratios_ours[-1]
    benchmark(run_once, 200, "hierdag")


def test_e7_faces(e7_faces_table, benchmark):
    assert all(e7_faces_table)
    benchmark(run_once, 100, "hierdag")
