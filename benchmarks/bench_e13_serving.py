"""E13 — serving throughput: queries/sec through the batching front-end.

The serving layer (:mod:`repro.serve`) answers *individual* queries by
accumulating them into mesh-sized batches.  This sweep fixes the
structure (a Kirkpatrick DAG over ``sites`` points, built and
snapshotted once, untimed) and the query load (``queries`` independent
points), then measures wall time to push the whole load through a
:class:`repro.serve.batcher.BatchingServer` across batch-size and
flush-deadline settings:

* small ``batch`` — many flushes, each paying the per-batch multisearch
  overhead on few queries: low throughput;
* ``batch`` at or above the load — one or two flushes amortizing the
  descent across every query, with the tail flushed by the deadline
  timer: the ``deadline_ms`` column is the latency floor visible in
  wall time when the batch never fills.

Each timed call restores the service from the snapshot's in-memory form
and runs a fresh event loop, server and result cache, so repeats don't
serve each other from the cache.  The reported step count is the summed
mesh steps of every flushed batch.

Committed document: ``BENCH_e13_serving.json`` (see EXPERIMENTS.md E13).
"""

import asyncio

import numpy as np

__all__ = ["sweep_setup", "sweep_run", "run_once"]


def sweep_setup(sites: int, queries: int, batch: int, deadline_ms: float) -> dict:
    """Untimed: build + snapshot + restore the structure, draw the load.

    The snapshot round-trips through its serialized bytes (header
    validation and content-hash check included), so the timed part serves
    from exactly what a disk restore would give it.
    """
    import io
    import tempfile
    from pathlib import Path

    from repro.serve import restore_service, snapshot_pointloc

    rng = np.random.default_rng(13)
    site_pts = rng.random((sites, 2))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "e13_pointloc.npz"
        snapshot_pointloc(path, site_pts, seed=13)
        blob = path.read_bytes()
    from repro.serve.snapshot import read_snapshot

    snapshot = read_snapshot(io.BytesIO(blob))
    service = restore_service(snapshot)
    load = rng.random((queries, 2))
    return {"service": service, "load": load}


async def _serve_load(service, load, batch: int, deadline_s: float):
    from repro.serve import BatchingServer, ResultCache

    server = BatchingServer(
        service,
        batch_size=batch,
        deadline_s=deadline_s,
        cache=ResultCache(capacity=4 * len(load)),
    )
    # submit_many gathers per-query futures; a tail batch smaller than
    # ``batch`` resolves when the deadline timer fires
    results = await server.submit_many(load)
    return results, server.stats


def sweep_run(
    ctx: dict, sites: int, queries: int, batch: int, deadline_ms: float
) -> tuple[float, int]:
    """Timed: the full load through a fresh server; returns (steps, m)."""
    results, stats = asyncio.run(
        _serve_load(ctx["service"], ctx["load"], batch, deadline_ms / 1e3)
    )
    assert len(results) == queries
    return float(stats["mesh_steps"]), len(results)


def run_once(sites: int, queries: int, batch: int, deadline_ms: float):
    return sweep_run(
        sweep_setup(sites, queries, batch, deadline_ms),
        sites,
        queries,
        batch,
        deadline_ms,
    )


def test_e13_batching_matches_direct():
    """The batched answers equal one direct run over the same load."""
    ctx = sweep_setup(sites=64, queries=48, batch=16, deadline_ms=20.0)
    steps, m = sweep_run(ctx, 64, 48, 16, 20.0)
    assert m == 48 and steps > 0
    direct, _ = ctx["service"].run_batch(ctx["load"])
    rebatched, _stats = asyncio.run(_serve_load(ctx["service"], ctx["load"], 16, 0.02))
    assert np.array_equal(np.array(rebatched), np.array(direct))
