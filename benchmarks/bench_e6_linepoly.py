"""E6 — Theorem 8.1: multiple line-polyhedron queries via DK-hierarchy
multisearch.

Sweeps the polyhedron size; all answers verified against the brute-force
oracle.  Success: query-phase mesh steps scale like sqrt(n) (the DAG
multisearch bound), answers 100% correct, improving-walk rate small.
"""

import numpy as np
import pytest

from repro.apps.linepoly import brute_force_line_test, line_polyhedron_queries
from repro.bench.reporting import Table
from repro.bench.workloads import random_lines, sphere_points
from repro.geometry.dk3d import build_dk_hierarchy

SIZES = [128, 256, 512, 1024]
M = 256


def run_once(n: int):
    pts = sphere_points(n, seed=n)
    hier = build_dk_hierarchy(pts, seed=1)
    p0, d = random_lines(M, seed=2)
    run = line_polyhedron_queries(hier, p0, d)
    oracle = brute_force_line_test(pts, hier.hulls[0].vertices, p0, d)
    correct = float((run.intersects == oracle).mean())
    dag_size = sum(h.vertices.size for h in hier.hulls) + 1
    return run, correct, dag_size


@pytest.fixture(scope="module")
def e6_table(save_table):
    table = Table(
        f"E6 / Theorem 8.1: line-polyhedron queries, m={M} lines (x2 tangent searches)",
        ["n_vertices", "dag_size", "mesh_steps", "steps/sqrt(dag)", "correct",
         "hits", "improved_walks"],
    )
    rows = []
    for n in SIZES:
        run, correct, dag_size = run_once(n)
        rows.append((run.mesh_steps, dag_size, correct, run.improved))
        table.add(
            n,
            dag_size,
            run.mesh_steps,
            run.mesh_steps / dag_size**0.5,
            correct,
            int(run.intersects.sum()),
            run.improved,
        )
    save_table(table, "e6_linepoly")
    return rows


def test_e6_shape(e6_table, benchmark):
    ratios = []
    for steps, dag_size, correct, improved in e6_table:
        assert correct == 1.0
        assert improved <= M  # robustness net fires on a minority
        ratios.append(steps / dag_size**0.5)
    assert max(ratios) / min(ratios) < 2.0
    benchmark(run_once, 256)
