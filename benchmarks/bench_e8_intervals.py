"""E8 — Section 6: multiple interval intersection search.

Counting (two Theorem 5 rank multisearches) and reporting (Theorem 7
range walk + interval-tree stabbing), vs the sequential interval tree.
Success: counting cost ~ sqrt(n); reporting cost output-sensitive
(~ sqrt(n) * (1 + k_max/log n) phase scaling); all answers verified.
"""

import numpy as np
import pytest

from repro.apps.interval_search import (
    count_intersections_mesh,
    report_intersections_mesh,
    setup_interval_search,
)
from repro.bench.reporting import Table
from repro.bench.workloads import random_intervals
from repro.intervals.interval_tree import brute_force_intersections
from repro.util.rng import make_rng

SIZES = [256, 512, 1024, 2048]
M = 128


def make_queries(n, width=20.0):
    rng = make_rng(7)
    a = rng.uniform(0, 1000, M)
    return a, a + rng.uniform(0.1, width, M)


def run_once(n: int, mode: str):
    lefts, rights = random_intervals(n, seed=n, domain=1000.0)
    setup = setup_interval_search(lefts, rights)
    a, b = make_queries(n)
    if mode == "count":
        out, steps = count_intersections_mesh(setup, a, b)
    else:
        out, steps = report_intersections_mesh(setup, a, b)
    return out, steps, (lefts, rights, a, b)


@pytest.fixture(scope="module")
def e8_table(save_table):
    table = Table(
        f"E8 / Section 6: interval intersection, m={M} queries",
        ["n", "count_steps", "count/sqrt(n)", "report_steps", "total_k", "verified"],
    )
    rows = []
    for n in SIZES:
        counts, csteps, (lefts, rights, a, b) = run_once(n, "count")
        reports, rsteps, _ = run_once(n, "report")
        ok = True
        total_k = 0
        for i in range(M):
            want = brute_force_intersections(lefts, rights, a[i], b[i])
            total_k += want.size
            ok &= counts[i] == want.size
            ok &= set(reports[i].tolist()) == set(want.tolist())
        rows.append((n, csteps, rsteps, ok))
        table.add(n, csteps, csteps / n**0.5, rsteps, total_k, ok)
    save_table(table, "e8_intervals")
    return rows


@pytest.fixture(scope="module")
def e8_output_table(save_table):
    """Output-sensitivity sweep: reporting cost vs answer size at fixed n."""
    n = 1024
    lefts, rights = random_intervals(n, seed=n, domain=1000.0)
    setup = setup_interval_search(lefts, rights)
    rng = make_rng(9)
    a = rng.uniform(0, 900, M)
    table = Table(
        f"E8b / Section 6: reporting cost vs output size (n={n}, m={M})",
        ["width", "total_k", "report_steps", "steps_per_k"],
    )
    rows = []
    for width in (2.0, 10.0, 50.0, 250.0):
        b = a + width
        reports, steps = report_intersections_mesh(setup, a, b)
        total_k = int(sum(r.size for r in reports))
        ok = all(
            set(r.tolist())
            == set(brute_force_intersections(lefts, rights, a[i], b[i]).tolist())
            for i, r in list(enumerate(reports))[::16]
        )
        assert ok
        rows.append((width, total_k, steps))
        table.add(width, total_k, steps, steps / max(total_k, 1))
    save_table(table, "e8b_output_sensitivity")
    return rows


def test_e8_shape(e8_table, benchmark):
    for n, csteps, rsteps, ok in e8_table:
        assert ok
    ratios = [c / n**0.5 for n, c, _, _ in e8_table]
    assert max(ratios) / min(ratios) < 2.5
    benchmark(run_once, 512, "count")


def test_e8_output_sensitivity(e8_output_table, benchmark):
    """Reporting cost grows with the answer size, sublinearly in k."""
    widths, ks, steps = zip(*e8_output_table)
    assert ks[-1] > 10 * ks[0]
    assert steps[-1] > steps[0]
    # sublinear: 10x+ the output costs far less than 10x the steps
    assert steps[-1] / steps[0] < 0.6 * ks[-1] / ks[0]
    benchmark(run_once, 256, "report")
