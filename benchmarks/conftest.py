"""Shared benchmark plumbing.

Every experiment bench computes its sweep once (module-scoped fixture),
prints the paper-style table, and writes it to ``benchmarks/results/`` so
the numbers quoted in EXPERIMENTS.md are regenerable; the ``benchmark``
fixture then times one representative run for wall-clock tracking.

Mesh *step counts* (the paper's cost measure) are deterministic and live
in the tables; pytest-benchmark's timings measure the simulator itself.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench.reporting import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_table():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(table: Table, name: str) -> None:
        text = table.render()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text, flush=True)

    return _save
