"""E14: availability under chaos — supervised serving vs worker-kill rate.

The supervision claim is quantitative: a worker pool with heartbeats,
deadlines, retries, and restarts should *degrade*, not collapse, when
workers die mid-batch.  This bench measures it directly: a fixed query
workload is pushed through a :class:`~repro.serve.supervisor.SupervisedServer`
over a :class:`~repro.serve.pool.WorkerPool` while ``worker_crash``
faults fire at increasing per-batch rates, and each point records
sustained throughput (qps) and latency quantiles (p50/p99).

The headline gate (enforced here and re-checked by a committed-document
test): **qps at a 10% kill rate must stay at or above 80% of the
fault-free qps**.  Retries and restarts cost wall-clock, so some drop is
expected — the gate bounds it.

This bench does not fit the generic runner's record schema (its metric
is qps under faults, not fast-vs-slow wall time), so it owns its CLI::

    PYTHONPATH=src python benchmarks/bench_e14_supervision.py --out BENCH_e14_supervision.json
    PYTHONPATH=src python benchmarks/bench_e14_supervision.py --compare BENCH_e14_supervision.json

``--compare`` re-runs the sweep and fails (exit 1) when any matching
kill-rate point's qps regressed below ``baseline * (1 - tolerance)``,
mirroring the runner's ``--compare`` contract; the availability gate is
checked on both fresh runs and compares.  Exit 2 means the bench itself
broke (typed serving failures or a missing baseline) — CI can tell
"worse" from "broken".
"""

from __future__ import annotations

import argparse
import asyncio
import json
import pathlib
import sys
import tempfile
import time

import numpy as np

SCHEMA_VERSION = 1
#: --compare tolerance: qps is wall-clock under multiprocess scheduling,
#: so the band is wide (mirrors the nightly e13 wall tolerance)
QPS_TOLERANCE = 0.5
#: the availability gate: min fraction of fault-free qps at 10% kills
AVAILABILITY_FLOOR = 0.8
GATE_KILL_RATE = 0.1

KILL_RATES = (0.0, 0.05, 0.1, 0.25)
N_QUERIES = 96
BATCH_SIZE = 8
WORKERS = 3


def _build_snapshot(tmpdir: pathlib.Path) -> pathlib.Path:
    from repro.serve.snapshot import snapshot_pointloc

    rng = np.random.default_rng(1331)
    sites = rng.standard_normal((48, 2))
    path = tmpdir / "e14_pointloc.npz"
    snapshot_pointloc(path, sites, seed=0)
    return path


def run_point(
    snapshot_path, kill_rate: float, n_queries: int = N_QUERIES, seed: int = 5
) -> dict:
    """One sweep point: qps + latency quantiles at one worker-kill rate."""
    from repro.mesh.faults import FaultPlan
    from repro.serve import ServingError, SupervisedServer, WorkerPool

    plans = []
    if kill_rate > 0:
        plans.append(
            FaultPlan(seed=seed, kind="worker_crash", rate=kill_rate, max_faults=None)
        )
    pool = WorkerPool(
        snapshot_path,
        workers=WORKERS,
        batch_deadline_s=10.0,
        heartbeat_s=0.1,
        heartbeat_timeout_s=3.0,
        max_retries=8,
        backoff_s=0.02,
        restart_backoff_s=0.05,
        breaker_threshold=12,
        fault_plans=plans,
    )
    rng = np.random.default_rng(97)
    queries = rng.standard_normal((n_queries, 2))
    latencies: list[float] = []
    errors: list[str] = []

    async def drive():
        server = SupervisedServer(pool, batch_size=BATCH_SIZE, deadline_s=0.01)

        async def one(q):
            t0 = time.monotonic()
            try:
                await server.submit(q)
                latencies.append(time.monotonic() - t0)
            except ServingError as exc:
                errors.append(type(exc).__name__)

        t0 = time.monotonic()
        await asyncio.gather(*(one(q) for q in queries))
        wall = time.monotonic() - t0
        await server.close(close_pool=True)
        return wall

    try:
        wall = asyncio.run(drive())
    finally:
        pool.close(timeout=1.0)
    lat = np.sort(np.asarray(latencies)) if latencies else np.asarray([0.0])
    return {
        "kill_rate": kill_rate,
        "n_queries": n_queries,
        "answered": len(latencies),
        "errors": len(errors),
        "wall_s": wall,
        "qps": len(latencies) / wall if wall > 0 else 0.0,
        "p50_ms": float(lat[int(0.50 * (len(lat) - 1))]) * 1e3,
        "p99_ms": float(lat[int(0.99 * (len(lat) - 1))]) * 1e3,
        "pool_stats": {
            k: v for k, v in pool.stats.items() if isinstance(v, (int, float)) and v
        },
    }


def run_sweep(kill_rates=KILL_RATES, n_queries: int = N_QUERIES) -> dict:
    from repro.bench.runner import provenance

    with tempfile.TemporaryDirectory(prefix="repro-e14-") as tmp:
        path = _build_snapshot(pathlib.Path(tmp))
        points = [run_point(path, rate, n_queries=n_queries) for rate in kill_rates]
    return {
        "schema": SCHEMA_VERSION,
        "bench": "e14_supervision",
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "config": {
            "kill_rates": list(kill_rates),
            "n_queries": n_queries,
            "batch_size": BATCH_SIZE,
            "workers": WORKERS,
        },
        "points": points,
        "provenance": provenance(),
    }


def availability_failures(doc: dict) -> list[str]:
    """The built-in gate: qps at GATE_KILL_RATE vs the fault-free point."""
    by_rate = {p["kill_rate"]: p for p in doc["points"]}
    base = by_rate.get(0.0)
    gate = by_rate.get(GATE_KILL_RATE)
    failures = []
    if base is None or gate is None:
        return [f"sweep lacks kill_rate 0.0 or {GATE_KILL_RATE} points"]
    floor = AVAILABILITY_FLOOR * base["qps"]
    if gate["qps"] < floor:
        failures.append(
            f"qps at {GATE_KILL_RATE:.0%} kills = {gate['qps']:.1f} < "
            f"{AVAILABILITY_FLOOR:.0%} of fault-free {base['qps']:.1f}"
        )
    for p in doc["points"]:
        if p["errors"]:
            failures.append(
                f"kill_rate={p['kill_rate']}: {p['errors']} queries failed "
                "(expected full recovery at these rates)"
            )
    return failures


def compare(doc: dict, baseline: dict, tolerance: float = QPS_TOLERANCE) -> list[str]:
    """qps regressions of this run vs a committed baseline document."""
    base_by_rate = {p["kill_rate"]: p for p in baseline["points"]}
    failures = []
    for p in doc["points"]:
        base = base_by_rate.get(p["kill_rate"])
        if base is None:
            continue
        floor = base["qps"] * (1 - tolerance)
        if p["qps"] < floor:
            failures.append(
                f"kill_rate={p['kill_rate']}: qps {p['qps']:.1f} vs baseline "
                f"{base['qps']:.1f} (-{1 - p['qps'] / base['qps']:.0%} "
                f"> {tolerance:.0%})"
            )
    return failures


def _render(doc: dict) -> str:
    lines = [f"{doc['bench']}: {len(doc['points'])} kill-rate points"]
    for p in doc["points"]:
        stats = p["pool_stats"]
        chaos = {
            k: stats[k]
            for k in ("retries", "crashes", "restarts", "timeouts")
            if k in stats
        }
        lines.append(
            f"  kill={p['kill_rate']:<5} qps={p['qps']:7.1f}  "
            f"p50={p['p50_ms']:7.1f}ms  p99={p['p99_ms']:7.1f}ms  "
            f"answered={p['answered']}/{p['n_queries']}"
            + (f"  {chaos}" if chaos else "")
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="bench_e14_supervision", description=__doc__.split("\n", 1)[0]
    )
    parser.add_argument("--out", type=pathlib.Path, default=None)
    parser.add_argument(
        "--compare", type=pathlib.Path, default=None, metavar="BASELINE",
        help="re-run and fail on qps regressions vs this committed document",
    )
    parser.add_argument("--tolerance", type=float, default=QPS_TOLERANCE)
    parser.add_argument(
        "--quick", action="store_true",
        help="smaller workload (CI smoke; do not commit its output)",
    )
    args = parser.parse_args(argv)

    n = 32 if args.quick else N_QUERIES
    rates = (0.0, GATE_KILL_RATE) if args.quick else KILL_RATES
    doc = run_sweep(kill_rates=rates, n_queries=n)
    print(_render(doc), flush=True)

    failures = availability_failures(doc)
    if args.out is not None:
        args.out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.out}", flush=True)
    if args.compare is not None:
        if not args.compare.exists():
            print(f"baseline {args.compare} missing", file=sys.stderr)
            return 2
        baseline = json.loads(args.compare.read_text())
        failures.extend(compare(doc, baseline, tolerance=args.tolerance))
    if failures:
        print("\nE14 GATE FAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
