"""E15 — sharded multi-chip mesh: where off-chip cost overtakes scaling.

A :class:`repro.mesh.shard.MultiChipMesh` splits one global mesh into a
``k_chip x k_chip`` grid of chiplets.  Chiplets run intra-chip phases
concurrently (the clock folds their spans as a parallel section), so a
finer grid shrinks the per-phase critical path — but every global
primitive that spans chips also charges an off-chip exchange whose cost
grows with the chip-grid span and with volume over link bandwidth.

This sweep holds the global mesh (side 64) and the record count fixed
and varies only the decomposition, so the two effects meet in one
curve: total modelled steps *fall* while intra-chip parallelism wins,
then *rise* once the ``xchip:*`` exchanges dominate.  The committed
blob (``BENCH_e15_sharded.json``) records that crossover — with
unit-bandwidth links the minimum sits at ``k_chip=2`` and ``k_chip=8``
costs more than the unsharded mesh; widening the links (bandwidth 8)
moves the minimum out to ``k_chip=4``.  ``k_chip=1`` is the unsharded
engine by construction (byte-identical charges), so its row doubles as
the sweep's baseline anchor.

The workload is the full :class:`ShardedRecordSet` pipeline — sort,
scan, route, gather — i.e. every exchange pattern the sharded store
implements.  ``run_once`` returns total charged steps, which the runner
records as ``mesh_steps``.
"""

import numpy as np

from repro.mesh.shard import (
    MultiChipMesh,
    ShardedMeshEngine,
    ShardedRecordSet,
    XChipCost,
)

__all__ = ["run_once"]

#: global mesh side, fixed across the sweep so only the decomposition
#: varies; every swept k_chip must divide it
SIDE = 64


def run_once(
    k_chip: int, n: int, bandwidth: float = 1.0, seed: int = 1
) -> float:
    """Run the sharded pipeline at one decomposition; return total steps."""
    k_chip = int(k_chip)
    if SIDE % k_chip:
        raise ValueError(f"k_chip={k_chip} must divide the global side {SIDE}")
    mesh = MultiChipMesh.square(
        k_chip, SIDE // k_chip, XChipCost(bandwidth=float(bandwidth))
    )
    engine = ShardedMeshEngine(mesh)
    rng = np.random.default_rng(seed)
    n = int(n)
    columns = {
        "key": rng.integers(0, n, n),
        "payload": rng.standard_normal(n),
        "dest": rng.permutation(n).astype(np.int64),
    }
    with ShardedRecordSet(columns, mesh, engine=engine) as records:
        records.sort_by("key")
        records.scan("payload")
        records.route("dest")
        out = records.gather()
    if out["key"].shape != (n,):
        raise AssertionError(f"gather returned {out['key'].shape}, wanted ({n},)")
    steps = float(engine.clock.time)
    if not steps > 0:
        raise AssertionError(f"k_chip={k_chip} n={n} charged no steps")
    return steps
