"""E9 — Theorems 8.2-8.4: separation, hull merging, 3-d hull construction.

Separation agreement with the exact LP oracle over a gap sweep; hull
merge and divide-and-conquer construction vs scipy's Qhull on volume.
"""

import numpy as np
import pytest
from scipy.spatial import ConvexHull

from repro.apps.hullmerge import convex_hull_divide_conquer, merge_hulls
from repro.apps.separation import separate_polyhedra, separation_oracle
from repro.bench.reporting import Table
from repro.bench.workloads import sphere_points
from repro.geometry.dk3d import build_dk_hierarchy
from repro.geometry.hull3d import convex_hull_3d

GAPS = [0.2, 0.8, 1.4, 2.0, 2.6, 3.2]
HULL_SIZES = [200, 400, 800]


def run_separation(offset: float, n=150, seed=0):
    A = sphere_points(n, seed=seed)
    B = sphere_points(n, seed=seed + 99, center=(offset, 0.0, 0.0))
    ha = build_dk_hierarchy(A, seed=1)
    hb = build_dk_hierarchy(B, seed=2)
    res = separate_polyhedra(ha, hb)
    want = separation_oracle(A, B)
    return res, want


def run_hull(n: int):
    pts = np.random.default_rng(n).normal(size=(n, 3))
    ours = convex_hull_divide_conquer(pts, leaf_size=64, seed=0)
    ref = ConvexHull(pts)
    return abs(ours.volume() - ref.volume) / ref.volume


@pytest.fixture(scope="module")
def e9_tables(save_table):
    t1 = Table(
        "E9a / Theorem 8.2: separation gap sweep (sphere radius 1 pairs)",
        ["center_gap", "separated", "oracle", "decided", "fw_iters", "support_queries"],
    )
    sep_rows = []
    for g in GAPS:
        res, want = run_separation(g)
        sep_rows.append((res, want))
        t1.add(g, res.separated, want, res.decided, res.iterations, res.support_queries)
    save_table(t1, "e9a_separation")

    t2 = Table(
        "E9b / Theorems 8.3-8.4: divide-and-conquer 3-d hull vs Qhull",
        ["n", "volume_rel_err"],
    )
    hull_rows = []
    for n in HULL_SIZES:
        err = run_hull(n)
        hull_rows.append(err)
        t2.add(n, err)
    save_table(t2, "e9b_hullmerge")
    return sep_rows, hull_rows


def test_e9_shape(e9_tables, benchmark):
    sep_rows, hull_rows = e9_tables
    for res, want in sep_rows:
        if res.decided:
            assert res.separated == want
    # decisive on the clear cases at both ends
    assert sep_rows[0][0].decided and not sep_rows[0][0].separated
    assert sep_rows[-1][0].decided and sep_rows[-1][0].separated
    for err in hull_rows:
        assert err < 1e-9
    benchmark(run_hull, 200)
