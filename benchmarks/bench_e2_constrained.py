"""E2 — Lemma 3: Constrained-Multisearch runs in O(sqrt(n)) regardless of
congestion.

Two sweeps: (a) n sweep at maximum congestion (all queries in one
subgraph); (b) congestion sweep at fixed n, from uniform spread to
everything-on-one-subgraph.  Success: steps/sqrt(n) bounded in (a);
steps vary by at most a small constant factor across (b).
"""

import numpy as np
import pytest

from repro.bench.reporting import Table
from repro.core.constrained import constrained_multisearch
from repro.core.model import QuerySet
from repro.core.splitters import splitting_from_labels
from repro.graphs.adapters import ktree_directed_structure
from repro.graphs.ktree import build_balanced_search_tree
from repro.mesh.engine import MeshEngine

M = 1024


def setup(height):
    t = build_balanced_search_tree(2, height, seed=1)
    st = ktree_directed_structure(t)
    sp = splitting_from_labels(t.alpha_splitter().comp, t.children, 0.5)
    return t, st, sp


def sweep_setup(height=12, skew=1.0):
    """Untimed problem construction (tree, splitting, keys, start spread)."""
    t, st, sp = setup(height)
    rng = np.random.default_rng(3)
    keys = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], M)
    cut = max(1, (t.height + 1) // 2)
    roots = np.flatnonzero(t.depth == cut)
    starts = np.zeros(M, dtype=np.int64)
    spread = rng.random(M) >= skew
    picks = roots[rng.integers(0, roots.size, M)]
    starts[spread] = picks[spread]
    keys[spread] = t.subtree_lo[starts[spread]] + 1e-9
    return {"st": st, "sp": sp, "keys": keys, "starts": starts, "n": int(t.size)}


def sweep_run(ctx, height=12, skew=1.0):
    """Timed part: engine + query set + Constrained-Multisearch."""
    eng = MeshEngine.for_problem(max(ctx["n"], M))
    qs = QuerySet.start(ctx["keys"], ctx["starts"])
    stats = constrained_multisearch(eng, ctx["st"], qs, ctx["sp"])
    return eng.clock.time, ctx["n"], stats


def run_once(height=12, skew=1.0):
    """skew = fraction of queries starting at the root (max congestion);
    the rest start spread over the depth-cut subtree roots."""
    return sweep_run(sweep_setup(height, skew), height, skew)


@pytest.fixture(scope="module")
def e2_tables(save_table):
    t1 = Table(
        "E2a / Lemma 3: n sweep at max congestion (all queries on one subgraph)",
        ["height", "n", "steps", "steps/sqrt(n)", "copies", "max_q_per_copy"],
    )
    nsweep = []
    for h in (8, 10, 12, 14):
        steps, n, stats = run_once(height=h, skew=1.0)
        nsweep.append((n, steps))
        t1.add(h, n, steps, steps / n**0.5, stats.copies_created, stats.max_queries_per_copy)
    save_table(t1, "e2a_constrained_nsweep")

    t2 = Table(
        "E2b / Lemma 3: congestion sweep at height=12 (skew = fraction at root)",
        ["skew", "steps", "copies", "max_q_per_copy"],
    )
    skews = []
    for s in (0.0, 0.25, 0.5, 0.75, 1.0):
        steps, _, stats = run_once(height=12, skew=s)
        skews.append(steps)
        t2.add(s, steps, stats.copies_created, stats.max_queries_per_copy)
    save_table(t2, "e2b_constrained_skew")
    return nsweep, skews


def test_e2_shape(e2_tables, benchmark):
    nsweep, skews = e2_tables
    ratios = [steps / n**0.5 for n, steps in nsweep]
    assert max(ratios) / min(ratios) < 2.0
    # congestion invariance: the whole sweep within a 2.5x envelope
    assert max(skews) / min(skews) < 2.5
    benchmark(run_once, 12, 1.0)
