"""E12 — kernel-backend wall-clock sweep over the engine pipelines.

The kernel backends (``repro.mesh.backend``) are byte-identical by
contract — same outputs, same mesh-step charges — so the only thing left
to measure is host wall clock.  This sweep reruns three established
pipelines under every registered backend:

* ``constrained`` — E2's Constrained-Multisearch (Lemma 3) at max
  congestion;
* ``construct``   — E11's Kirkpatrick construction pipeline (Theorem 8
  preprocessing), the kernel-heaviest workload;
* ``hierdag``     — E1's hierarchical-DAG multisearch (Theorem 2).

Each sweep point pins ``REPRO_BACKEND`` for the timed call only (the
engines built inside resolve the backend from the environment), so the
committed ``BENCH_e12_backends.json`` carries one ``wall_s_min`` column
per backend per pipeline size.  Backends without their toolchain (e.g.
numba in an environment where it isn't installed) silently fall back to
numpy — their rows then measure the numpy reference, and the document's
``provenance`` block records the fallback.  The gate (EXPERIMENTS.md
E12, nightly CI ``--compare``) is that a *native* compiled backend beats
numpy at the largest point of at least one pipeline.
"""

import os

__all__ = ["BACKENDS", "sweep_setup", "sweep_run", "run_once"]

#: alphabetical, to satisfy the runner's ascending-sweep-point contract
BACKENDS = ["array_api", "cffi", "numba", "numpy"]


def sweep_setup(pipeline: str, backend: str, size: int) -> dict:
    """Untimed problem construction, shared by every backend's run.

    The problem inputs are backend-independent (the equivalence suite
    guarantees it), so each pipeline reuses its source bench's setup.
    """
    if pipeline == "hierdag":
        import bench_e1_hierdag as e1

        return {"e1": e1.sweep_setup(size, "hierdag")}
    if pipeline == "constrained":
        import bench_e2_constrained as e2

        return {"e2": e2.sweep_setup(height=size, skew=1.0)}
    if pipeline == "construct":
        return {}  # E11's entry point is the construction itself
    raise ValueError(f"unknown pipeline {pipeline!r}")


def sweep_run(ctx: dict, pipeline: str, backend: str, size: int) -> float:
    """Timed part: the pipeline under ``backend``; returns mesh steps.

    ``REPRO_BACKEND`` is pinned around the call and restored afterwards
    so sweep points can share a process (pytest, ``run_point`` loops)
    without leaking the selection.
    """
    prior = os.environ.get("REPRO_BACKEND")
    os.environ["REPRO_BACKEND"] = backend
    try:
        if pipeline == "hierdag":
            import bench_e1_hierdag as e1

            steps, _n = e1.sweep_run(ctx["e1"], size, "hierdag")
            return float(steps)
        if pipeline == "constrained":
            import bench_e2_constrained as e2

            steps, _n, _stats = e2.sweep_run(ctx["e2"], height=size, skew=1.0)
            return float(steps)
        import bench_e11_construct as e11

        return float(e11.run_once("kirkpatrick", size))
    finally:
        if prior is None:
            os.environ.pop("REPRO_BACKEND", None)
        else:
            os.environ["REPRO_BACKEND"] = prior


def run_once(pipeline: str, backend: str, size: int) -> float:
    return sweep_run(sweep_setup(pipeline, backend, size), pipeline, backend, size)


def test_e12_steps_backend_invariant():
    """Mesh-step charges are a model quantity: identical for every backend."""
    ctx = sweep_setup("constrained", "numpy", 8)
    steps = {b: sweep_run(ctx, "constrained", b, 8) for b in BACKENDS}
    assert len(set(steps.values())) == 1, steps
