"""E1 — Theorem 2: multisearch on hierarchical DAGs in O(sqrt(n)).

Regenerates the table the theorem implies: for a mu-ary search DAG and
n key queries, measured mesh steps for Algorithm 1 vs the synchronous
baseline, as n sweeps.  Success criteria (DESIGN.md): steps/sqrt(n)
bounded for Algorithm 1 while the baseline's grows like log n; widening
gap.
"""

import numpy as np
import pytest

from repro.bench.reporting import Table
from repro.core.baseline import synchronous_multisearch
from repro.core.hierdag import hierdag_multisearch
from repro.core.model import QuerySet
from repro.graphs.adapters import hierdag_search_structure
from repro.graphs.hierarchical import build_mu_ary_search_dag
from repro.mesh.engine import MeshEngine

HEIGHTS = [8, 10, 12, 14, 16]
M_QUERIES = 1024


def sweep_setup(height: int, method: str) -> dict:
    """Untimed problem construction (graph, structure, keys) for one point."""
    dag, leaf_keys = build_mu_ary_search_dag(2, height, seed=1)
    st = hierdag_search_structure(dag)
    rng = np.random.default_rng(2)
    keys = rng.uniform(leaf_keys[0], leaf_keys[-1], M_QUERIES)
    return {"st": st, "keys": keys, "n": int(dag.size)}


def sweep_run(ctx: dict, height: int, method: str) -> tuple[float, int]:
    """Timed part: engine + query set + the multisearch itself."""
    eng = MeshEngine.for_problem(max(ctx["n"], M_QUERIES))
    qs = QuerySet.start(ctx["keys"], 0)
    if method == "hierdag":
        res = hierdag_multisearch(eng, ctx["st"], qs, mu=2.0, c=2)
    else:
        res = synchronous_multisearch(eng, ctx["st"], qs)
    return res.mesh_steps, ctx["n"]


def run_once(height: int, method: str) -> tuple[float, int]:
    return sweep_run(sweep_setup(height, method), height, method)


@pytest.fixture(scope="module")
def e1_table(save_table):
    table = Table(
        "E1 / Theorem 2: hierarchical-DAG multisearch, mu=2, m=1024 queries",
        ["height", "n", "alg1_steps", "alg1/sqrt(n)", "base_steps", "base/sqrt(n)", "speedup"],
    )
    rows = []
    for h in HEIGHTS:
        ours, n = run_once(h, "hierdag")
        base, _ = run_once(h, "baseline")
        rows.append((h, n, ours, base))
        table.add(h, n, ours, ours / n**0.5, base, base / n**0.5, base / ours)
    save_table(table, "e1_hierdag")
    return rows


def run_variant(mu: int, height: int, m: int) -> tuple[float, int]:
    dag, leaf_keys = build_mu_ary_search_dag(mu, height, seed=1)
    st = hierdag_search_structure(dag)
    rng = np.random.default_rng(2)
    keys = rng.uniform(leaf_keys[0], leaf_keys[-1], m)
    eng = MeshEngine.for_problem(max(dag.size, m))
    qs = QuerySet.start(keys, 0)
    res = hierdag_multisearch(eng, st, qs, mu=float(mu), c=2)
    assert not qs.active.any()
    return res.mesh_steps, dag.size


@pytest.fixture(scope="module")
def e1_variants(save_table):
    table = Table(
        "E1b / Theorem 2: mu and query-load variants",
        ["mu", "height", "n", "m", "steps", "steps/sqrt(n)"],
    )
    rows = []
    cases = [
        (2, 13, 2048),
        (3, 8, 2048),
        (4, 6, 2048),
        (2, 13, 512),
        (2, 13, 8192),
    ]
    for mu, h, m in cases:
        steps, n = run_variant(mu, h, m)
        rows.append((mu, h, n, m, steps))
        table.add(mu, h, n, m, steps, steps / n**0.5)
    save_table(table, "e1b_variants")
    return rows


def test_e1_shape(e1_table, benchmark):
    """Algorithm 1's steps/sqrt(n) stays bounded; the baseline's grows."""
    ratios_ours = [ours / n**0.5 for _, n, ours, _ in e1_table]
    ratios_base = [base / n**0.5 for _, n, _, base in e1_table]
    assert max(ratios_ours) / min(ratios_ours) < 1.6
    assert ratios_base[-1] / ratios_base[0] > 1.5  # ~ h growth
    speedup = [b / o for (_, _, o, b) in e1_table]
    assert speedup[-1] > speedup[0]
    benchmark(run_once, 12, "hierdag")


def test_e1_variants(e1_variants, benchmark):
    """mu in {2,3,4} all O(sqrt(n)); schedule oblivious to the query load m
    as long as m = O(n) (the paper's regime)."""
    by_case = {(mu, h, m): steps for mu, h, n, m, steps in e1_variants}
    # load-independence: the mesh is sized by n here, so the schedule and
    # hence the step count are identical for every m <= n
    assert by_case[(2, 13, 512)] == by_case[(2, 13, 2048)] == by_case[(2, 13, 8192)]
    # every mu within the same sqrt(n) envelope
    for mu, h, n, m, steps in e1_variants:
        assert steps / n**0.5 < 130
    benchmark(run_variant, 3, 7, 1024)
