"""E10 — substitution audit: cycle-accurate VM vs the counted engine.

For each primitive, the VM's measured step count per mesh side, next to
the engine's charged cost.  Success: route/scan/broadcast linear in side;
shearsort within its side*log(side) envelope (the documented gap to the
optimal-sort model the engine charges).
"""

import math

import numpy as np
import pytest

from repro.bench.reporting import Table
from repro.mesh.concurrent_read import vm_concurrent_read
from repro.mesh.engine import MeshEngine
from repro.mesh.machine import MeshVM
from repro.mesh.routing import route_permutation
from repro.mesh.scan import broadcast_from_origin, snake_prefix_sum
from repro.mesh.sorting import shearsort

SIDES = [8, 16, 32, 64]


def vm_costs(side: int):
    rng = np.random.default_rng(side)
    n = side * side
    out = {}
    vm = MeshVM(side)
    vm.load_rowmajor("k", rng.permutation(n))
    shearsort(vm, "k")
    out["sort"] = vm.steps
    vm = MeshVM(side)
    route_permutation(vm, rng.permutation(n), np.arange(n))
    out["route"] = vm.steps
    vm = MeshVM(side)
    vm.load_rowmajor("v", rng.integers(0, 9, n))
    snake_prefix_sum(vm, "v", "p")
    out["scan"] = vm.steps
    vm = MeshVM(side)
    vm.alloc("s", 1.0)
    broadcast_from_origin(vm, "s", "d")
    out["broadcast"] = vm.steps
    # concurrent read (runs on a 2n-processor VM internally)
    addr = rng.integers(0, n, n)
    mem = rng.uniform(size=n)
    vals, steps = vm_concurrent_read(addr, mem)
    assert np.allclose(vals, mem[addr])
    out["rar"] = steps
    return out


@pytest.fixture(scope="module")
def e10_table(save_table):
    cost = MeshEngine(2).clock.cost
    table = Table(
        "E10: VM measured steps vs engine charged cost, per primitive",
        ["side", "vm_sort", "eng_sort", "vm_route", "eng_route",
         "vm_scan", "eng_scan", "vm_bcast", "eng_bcast", "vm_rar", "eng_rar"],
    )
    rows = []
    for s in SIDES:
        c = vm_costs(s)
        rows.append((s, c))
        table.add(
            s,
            c["sort"], cost.sort * s,
            c["route"], cost.route * s,
            c["scan"], cost.scan * s,
            c["broadcast"], cost.broadcast * s,
            c["rar"], cost.route * s,
        )
    save_table(table, "e10_vm")
    return rows


def test_e10_shape(e10_table, benchmark):
    for s, c in e10_table:
        assert c["sort"] <= 4 * s * (math.log2(s) + 2)
        assert c["route"] <= 4 * s * (math.log2(s) + 2)  # route = one sort
        assert c["scan"] <= 6 * s
        assert c["broadcast"] == 2 * s - 2
        # RAR = two sorts + sweeps on the 2n mesh (side * sqrt(2))
        s2 = math.ceil(math.sqrt(2) * s)
        assert c["rar"] <= 10 * s2 * (math.log2(s2) + 2)
    # scan and broadcast scale linearly; sort superlinearly but gently
    (_, c16), (_, c32) = e10_table[1], e10_table[2]
    assert 1.7 < c32["scan"] / c16["scan"] < 2.3
    assert 1.7 < c32["broadcast"] / c16["broadcast"] < 2.3
    assert c32["sort"] / c16["sort"] < 3.0
    benchmark(vm_costs, 32)
