"""F1-F5 — figure reproductions: construct, validate, render.

Each figure's construction is validated against the definitional laws it
illustrates (see repro.figures); the renderings are written to
benchmarks/results/figures.txt.
"""

import pathlib

import pytest

from repro.figures import figure1, figure2, figure3, figure4, figure5

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def figure_reports():
    reports = [
        figure1(height=8),
        figure2(height=10),
        figure3(height=18),
        figure4(height=32, c=2),
        figure5(height=32, c=2),
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n\n".join(str(r) for r in reports)
    (RESULTS_DIR / "figures.txt").write_text(text + "\n")
    print("\n" + text, flush=True)
    return reports


def test_figures(figure_reports, benchmark):
    f1, f2, f3, f4, f5 = figure_reports
    assert f1.facts["mu"] == 2.0
    assert f2.facts["components"] == 33
    assert f3.facts["border_distance"] >= 2  # ~h/6 - 1 at h = 18
    assert f4.facts["bands"] >= 1
    assert any(k.endswith("size_ratio") for k in f5.facts)
    benchmark(figure2, 8)
