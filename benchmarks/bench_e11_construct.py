"""E11 — construction cost: modelled mesh steps for building the structures.

The paper builds its search structures on the mesh out of the same
primitives the queries use; Theorem 8's preprocessing is O(sqrt(n)).
This sweep charges the Kirkpatrick and Dobkin–Kirkpatrick construction
pipelines to a :class:`repro.mesh.construct.Construction` and records
total modelled steps across a 64x problem-size range — the committed
blob (``BENCH_e11_construct.json``) gates that ``steps / sqrt(n)`` stays
in a bounded band, i.e. construction really is O(sqrt(n)) in the model.

Each pipeline is the full build: hierarchy plus the flattened search
structure the applications query (``kirkpatrick_structure`` /
``dk_support_structure``).  ``run_once`` returns the charged step count,
so the runner's generic extractor records it as ``mesh_steps``; the
builder outputs themselves are exercised but not returned.
"""

import numpy as np

from repro.bench.workloads import sphere_points
from repro.mesh.construct import Construction
from repro.util.rng import make_rng

__all__ = ["run_once"]


def _kirkpatrick(n: int, seed: int, construct: Construction) -> None:
    from repro.geometry.kirkpatrick import build_kirkpatrick, kirkpatrick_structure

    rng = make_rng(100 + seed)
    pts = rng.uniform(0.0, 1.0, (n, 2))
    hier = build_kirkpatrick(pts, seed=seed, construct=construct)
    kirkpatrick_structure(hier, construct=construct)


def _dk3d(n: int, seed: int, construct: Construction) -> None:
    from repro.geometry.dk3d import build_dk_hierarchy, dk_support_structure

    pts = sphere_points(n, seed=200 + seed)
    hier = build_dk_hierarchy(pts, seed=seed, construct=construct)
    dk_support_structure(hier, construct=construct)


_PIPELINES = {"kirkpatrick": _kirkpatrick, "dk3d": _dk3d}


def run_once(pipeline: str, n: int, seed: int = 1) -> float:
    """Build one pipeline's structures; return total modelled mesh steps."""
    construct = Construction(n + 3)  # +3: kirkpatrick's bounding triangle
    _PIPELINES[pipeline](int(n), int(seed), construct)
    steps = float(construct.steps)
    if not steps > 0:
        raise AssertionError(f"{pipeline} n={n} charged no construction steps")
    return steps


def sqrt_ratio(steps: float, n: int) -> float:
    """The gated quantity: steps normalised by the paper's sqrt(n) bound."""
    return steps / float(np.sqrt(n))
